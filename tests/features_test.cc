#include <cmath>

#include <gtest/gtest.h>

#include "data/item_dictionary.h"
#include "features/feature_extractor.h"
#include "features/feature_schema.h"

namespace yver::features {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

TEST(FeatureSchemaTest, Exactly48Features) {
  EXPECT_EQ(FeatureSchema::Get().size(), 48u);
}

TEST(FeatureSchemaTest, NamesAreUniqueAndResolvable) {
  const auto& schema = FeatureSchema::Get();
  std::set<std::string> names;
  for (size_t i = 0; i < schema.size(); ++i) {
    EXPECT_TRUE(names.insert(schema.def(i).name).second);
    EXPECT_EQ(schema.IndexOf(schema.def(i).name), i);
  }
}

TEST(FeatureSchemaTest, PaperFeatureNamesPresent) {
  const auto& schema = FeatureSchema::Get();
  // Names appearing in the printed trees of Tables 7/8.
  for (const char* name : {"sameFFN", "MFNdist", "FFNdist", "sameFN",
                           "FNdist", "SNdist", "B3dist", "LNdist", "MNdist",
                           "DPGeoDist"}) {
    (void)name;
  }
  EXPECT_NO_FATAL_FAILURE(schema.IndexOf("sameFFN"));
  EXPECT_NO_FATAL_FAILURE(schema.IndexOf("MFNdist"));
  EXPECT_NO_FATAL_FAILURE(schema.IndexOf("B3dist"));
  EXPECT_NO_FATAL_FAILURE(schema.IndexOf("DPGeoDist"));
  EXPECT_NO_FATAL_FAILURE(schema.IndexOf("sameSource"));
}

class FeatureExtractorTest : public ::testing::Test {
 protected:
  void Build() {
    encoded_ = data::EncodeDataset(dataset_, [](AttributeId,
                                                std::string_view v)
                                                 -> std::optional<geo::GeoPoint> {
      if (v == "Torino") return geo::GeoPoint{45.07, 7.69};
      if (v == "Moncalieri") return geo::GeoPoint{45.00, 7.68};
      return std::nullopt;
    });
    extractor_ = std::make_unique<FeatureExtractor>(encoded_);
  }

  double Feature(const FeatureVector& fv, const char* name) {
    return fv.values[FeatureSchema::Get().IndexOf(name)];
  }

  Dataset dataset_;
  data::EncodedDataset encoded_;
  std::unique_ptr<FeatureExtractor> extractor_;
};

TEST_F(FeatureExtractorTest, SameNameTrinarySemantics) {
  Record a;
  a.Add(AttributeId::kFirstName, "John");
  a.Add(AttributeId::kFirstName, "Harris");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "John");
  dataset_.Add(std::move(b));
  Record c;
  c.Add(AttributeId::kFirstName, "Pierre");
  dataset_.Add(std::move(c));
  Build();
  // The paper's example: {John, Harris} vs {John} -> partial.
  auto fv_ab = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv_ab, "sameFN"),
                   static_cast<double>(NameAgreement::kPartial));
  auto fv_bc = extractor_->Extract(1, 2);
  EXPECT_DOUBLE_EQ(Feature(fv_bc, "sameFN"),
                   static_cast<double>(NameAgreement::kNo));
  Record d;
  d.Add(AttributeId::kFirstName, "John");
  dataset_ = Dataset();
  Record b2;
  b2.Add(AttributeId::kFirstName, "John");
  dataset_.Add(std::move(d));
  dataset_.Add(std::move(b2));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "sameFN"),
                   static_cast<double>(NameAgreement::kYes));
}

TEST_F(FeatureExtractorTest, MissingAttributesGiveNaN) {
  Record a;
  a.Add(AttributeId::kFirstName, "Guido");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "Guido");
  b.Add(AttributeId::kLastName, "Foa");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_TRUE(std::isnan(Feature(fv, "sameLN")));  // a lacks last name
  EXPECT_TRUE(std::isnan(Feature(fv, "B3dist")));
  EXPECT_TRUE(std::isnan(Feature(fv, "sameGender")));
  EXPECT_FALSE(std::isnan(Feature(fv, "sameFN")));
  EXPECT_FALSE(std::isnan(Feature(fv, "sameSource")));  // always present
}

TEST_F(FeatureExtractorTest, NameDistIsMaxOverValues) {
  Record a;
  a.Add(AttributeId::kFirstName, "Guido");
  a.Add(AttributeId::kFirstName, "Massimo");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "Guido");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "FNdist"), 1.0);  // best pair is exact
}

TEST_F(FeatureExtractorTest, BirthDateDistancesAreRaw) {
  Record a;
  a.Add(AttributeId::kBirthDay, "2");
  a.Add(AttributeId::kBirthMonth, "8");
  a.Add(AttributeId::kBirthYear, "1936");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kBirthDay, "18");
  b.Add(AttributeId::kBirthMonth, "11");
  b.Add(AttributeId::kBirthYear, "1920");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "B1dist"), 16.0);
  EXPECT_DOUBLE_EQ(Feature(fv, "B2dist"), 3.0);
  EXPECT_DOUBLE_EQ(Feature(fv, "B3dist"), 16.0);
  // Normalized companions.
  EXPECT_NEAR(Feature(fv, "B3sim"), 1.0 - 16.0 / 100.0, 1e-9);
}

TEST_F(FeatureExtractorTest, GeoDistanceTurinMoncalieri) {
  Record a;
  a.Add(AttributeId::kBirthCity, "Torino");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kBirthCity, "Moncalieri");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  double d = Feature(fv, "BPGeoDist");
  // The paper's example: Turin-Moncalieri = 9 km.
  EXPECT_GT(d, 5.0);
  EXPECT_LT(d, 12.0);
}

TEST_F(FeatureExtractorTest, UnknownCityGeoIsMissing) {
  Record a;
  a.Add(AttributeId::kBirthCity, "Atlantis");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kBirthCity, "Torino");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_TRUE(std::isnan(Feature(fv, "BPGeoDist")));
  // But the binary place-part equality still compares strings.
  EXPECT_DOUBLE_EQ(Feature(fv, "sameBPCity"),
                   static_cast<double>(BinaryCode::kNo));
}

TEST_F(FeatureExtractorTest, SameSourceGenderProfession) {
  Record a;
  a.source_id = 7;
  a.Add(AttributeId::kGender, "M");
  a.Add(AttributeId::kProfession, "tailor");
  dataset_.Add(std::move(a));
  Record b;
  b.source_id = 7;
  b.Add(AttributeId::kGender, "M");
  b.Add(AttributeId::kProfession, "baker");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "sameSource"),
                   static_cast<double>(BinaryCode::kYes));
  EXPECT_DOUBLE_EQ(Feature(fv, "sameGender"),
                   static_cast<double>(BinaryCode::kYes));
  EXPECT_DOUBLE_EQ(Feature(fv, "sameProfession"),
                   static_cast<double>(BinaryCode::kNo));
}

TEST_F(FeatureExtractorTest, CaseInsensitiveNameAgreement) {
  Record a;
  a.Add(AttributeId::kLastName, "FOA");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "foa");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "sameLN"),
                   static_cast<double>(NameAgreement::kYes));
  EXPECT_DOUBLE_EQ(Feature(fv, "LNdist"), 1.0);
}

TEST_F(FeatureExtractorTest, BagJaccardAlwaysPresent) {
  Record a;
  a.Add(AttributeId::kFirstName, "X");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "X");
  dataset_.Add(std::move(b));
  Build();
  auto fv = extractor_->Extract(0, 1);
  EXPECT_DOUBLE_EQ(Feature(fv, "bagJaccard"), 1.0);
}

TEST_F(FeatureExtractorTest, SymmetricInArguments) {
  Record a;
  a.Add(AttributeId::kFirstName, "Guido");
  a.Add(AttributeId::kLastName, "Foa");
  a.Add(AttributeId::kBirthYear, "1920");
  dataset_.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "Guida");
  b.Add(AttributeId::kLastName, "Foy");
  b.Add(AttributeId::kBirthYear, "1925");
  dataset_.Add(std::move(b));
  Build();
  auto ab = extractor_->Extract(0, 1);
  auto ba = extractor_->Extract(1, 0);
  for (size_t i = 0; i < ab.values.size(); ++i) {
    if (std::isnan(ab.values[i])) {
      EXPECT_TRUE(std::isnan(ba.values[i]));
    } else {
      EXPECT_DOUBLE_EQ(ab.values[i], ba.values[i]) << "feature " << i;
    }
  }
}

}  // namespace
}  // namespace yver::features
