#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/inverted_index.h"
#include "data/item_dictionary.h"
#include "data/schema.h"
#include "data/stats.h"
#include "geo/geo.h"

namespace yver {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

// ---------------------------------------------------------------------------
// Geo

TEST(GeoTest, ZeroDistanceToSelf) {
  geo::GeoPoint p{45.07, 7.69};
  EXPECT_DOUBLE_EQ(geo::HaversineKm(p, p), 0.0);
}

TEST(GeoTest, TurinMoncalieriAboutNineKm) {
  // The paper's example: Turin-Moncalieri = 9 km.
  geo::GeoPoint turin{45.07, 7.69};
  geo::GeoPoint moncalieri{45.00, 7.68};
  double d = geo::HaversineKm(turin, moncalieri);
  EXPECT_GT(d, 5.0);
  EXPECT_LT(d, 12.0);
}

TEST(GeoTest, Symmetric) {
  geo::GeoPoint a{52.23, 21.01};
  geo::GeoPoint b{50.06, 19.94};
  EXPECT_DOUBLE_EQ(geo::HaversineKm(a, b), geo::HaversineKm(b, a));
}

TEST(GeoTest, WarsawKrakowAbout250Km) {
  geo::GeoPoint warsaw{52.23, 21.01};
  geo::GeoPoint krakow{50.06, 19.94};
  double d = geo::HaversineKm(warsaw, krakow);
  EXPECT_GT(d, 200.0);
  EXPECT_LT(d, 300.0);
}

// ---------------------------------------------------------------------------
// Schema

TEST(SchemaTest, PlaceAttributeMapping) {
  EXPECT_EQ(data::PlaceAttribute(data::PlaceType::kBirth,
                                 data::PlacePart::kCity),
            AttributeId::kBirthCity);
  EXPECT_EQ(data::PlaceAttribute(data::PlaceType::kDeath,
                                 data::PlacePart::kCountry),
            AttributeId::kDeathCountry);
  EXPECT_EQ(data::PlaceAttribute(data::PlaceType::kWartime,
                                 data::PlacePart::kRegion),
            AttributeId::kWarRegion);
}

TEST(SchemaTest, ShortNameRoundTrip) {
  for (AttributeId attr : data::AllAttributes()) {
    auto parsed = data::AttributeFromShortName(data::AttributeShortName(attr));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, attr);
  }
}

TEST(SchemaTest, ShortNamesAreUnique) {
  std::set<std::string_view> names;
  for (AttributeId attr : data::AllAttributes()) {
    EXPECT_TRUE(names.insert(data::AttributeShortName(attr)).second);
  }
}

TEST(SchemaTest, ValueClasses) {
  EXPECT_EQ(data::AttributeClass(AttributeId::kFirstName),
            data::ValueClass::kName);
  EXPECT_EQ(data::AttributeClass(AttributeId::kGender),
            data::ValueClass::kCategorical);
  EXPECT_EQ(data::AttributeClass(AttributeId::kBirthYear),
            data::ValueClass::kYear);
  EXPECT_EQ(data::AttributeClass(AttributeId::kWarCity),
            data::ValueClass::kGeo);
  EXPECT_EQ(data::AttributeClass(AttributeId::kWarCountry),
            data::ValueClass::kPlacePart);
}

// ---------------------------------------------------------------------------
// Record

TEST(RecordTest, MultiValuedAttributes) {
  Record r;
  r.Add(AttributeId::kFirstName, "John");
  r.Add(AttributeId::kFirstName, "Harris");
  r.Add(AttributeId::kLastName, "Smith");
  EXPECT_EQ(r.Values(AttributeId::kFirstName).size(), 2u);
  EXPECT_EQ(r.FirstValue(AttributeId::kFirstName), "John");
  EXPECT_TRUE(r.Has(AttributeId::kLastName));
  EXPECT_FALSE(r.Has(AttributeId::kGender));
}

TEST(RecordTest, EmptyValuesIgnored) {
  Record r;
  r.Add(AttributeId::kFirstName, "");
  EXPECT_FALSE(r.Has(AttributeId::kFirstName));
  EXPECT_EQ(r.FirstValue(AttributeId::kFirstName), "");
}

TEST(RecordTest, PresenceMask) {
  Record r;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foa");
  uint32_t mask = r.PresenceMask();
  EXPECT_TRUE(mask & (1u << 0));  // FirstName
  EXPECT_TRUE(mask & (1u << 1));  // LastName
  EXPECT_FALSE(mask & (1u << 7));  // Gender
}

// ---------------------------------------------------------------------------
// Dataset gold helpers

Dataset MakeGoldDataset() {
  Dataset ds;
  for (int i = 0; i < 5; ++i) {
    Record r;
    r.book_id = 1000u + static_cast<uint64_t>(i);
    r.entity_id = i < 3 ? 1 : 2;  // records 0,1,2 same entity; 3,4 another
    r.family_id = 7;
    r.Add(AttributeId::kFirstName, "X");
    ds.Add(std::move(r));
  }
  return ds;
}

TEST(DatasetTest, GoldMatchSemantics) {
  Dataset ds = MakeGoldDataset();
  EXPECT_TRUE(ds.IsGoldMatch(0, 1));
  EXPECT_TRUE(ds.IsGoldMatch(3, 4));
  EXPECT_FALSE(ds.IsGoldMatch(0, 3));
  EXPECT_TRUE(ds.IsGoldFamilyMatch(0, 3));
}

TEST(DatasetTest, UnknownEntityNeverMatches) {
  Dataset ds;
  Record a;
  a.entity_id = data::kUnknownEntity;
  Record b;
  b.entity_id = data::kUnknownEntity;
  ds.Add(std::move(a));
  ds.Add(std::move(b));
  EXPECT_FALSE(ds.IsGoldMatch(0, 1));
}

TEST(DatasetTest, GoldPairCounts) {
  Dataset ds = MakeGoldDataset();
  EXPECT_EQ(ds.NumGoldPairs(), 3u + 1u);  // C(3,2) + C(2,2)
  EXPECT_EQ(ds.GoldPairs().size(), 4u);
}

TEST(RecordPairTest, CanonicalOrder) {
  data::RecordPair p(7, 3);
  EXPECT_EQ(p.a, 3u);
  EXPECT_EQ(p.b, 7u);
  EXPECT_EQ(p, data::RecordPair(3, 7));
}

// ---------------------------------------------------------------------------
// ItemDictionary / EncodedDataset

TEST(ItemDictionaryTest, InternIsIdempotent) {
  data::ItemDictionary dict;
  auto id1 = dict.Intern(AttributeId::kFirstName, "Moshe");
  auto id2 = dict.Intern(AttributeId::kFirstName, "Moshe");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ItemDictionaryTest, SameValueDifferentAttributeDistinct) {
  data::ItemDictionary dict;
  auto id1 = dict.Intern(AttributeId::kFirstName, "Israel");
  auto id2 = dict.Intern(AttributeId::kLastName, "Israel");
  EXPECT_NE(id1, id2);
}

TEST(ItemDictionaryTest, DebugStringUsesPrefix) {
  data::ItemDictionary dict;
  auto id = dict.Intern(AttributeId::kFirstName, "Moshe");
  EXPECT_EQ(dict.DebugString(id), "FN_Moshe");
}

TEST(EncodeDatasetTest, BagsAreSortedUniqueWithFrequencies) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kFirstName, "Guido");
  a.Add(AttributeId::kLastName, "Foa");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "Guido");
  ds.Add(std::move(b));
  auto encoded = data::EncodeDataset(ds);
  ASSERT_EQ(encoded.bags.size(), 2u);
  EXPECT_EQ(encoded.bags[0].size(), 2u);
  EXPECT_TRUE(std::is_sorted(encoded.bags[0].begin(), encoded.bags[0].end()));
  auto guido = encoded.dictionary.Find(AttributeId::kFirstName, "Guido");
  ASSERT_TRUE(guido.has_value());
  EXPECT_EQ(encoded.dictionary.frequency(*guido), 2u);
}

TEST(EncodeDatasetTest, GeoResolverPopulatesCoordinates) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kBirthCity, "Torino");
  ds.Add(std::move(a));
  auto resolver = [](AttributeId, std::string_view v)
      -> std::optional<geo::GeoPoint> {
    if (v == "Torino") return geo::GeoPoint{45.07, 7.69};
    return std::nullopt;
  };
  auto encoded = data::EncodeDataset(ds, resolver);
  auto id = encoded.dictionary.Find(AttributeId::kBirthCity, "Torino");
  ASSERT_TRUE(id.has_value());
  ASSERT_TRUE(encoded.dictionary.geo(*id).has_value());
  EXPECT_DOUBLE_EQ(encoded.dictionary.geo(*id)->lat_deg, 45.07);
}

TEST(EncodeDatasetTest, PruneMostFrequentRemovesHeavyItems) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) {
    Record r;
    r.Add(AttributeId::kGender, "M");  // appears everywhere
    r.Add(AttributeId::kFirstName, "N" + std::to_string(i));
    ds.Add(std::move(r));
  }
  auto encoded = data::EncodeDataset(ds);
  // 101 distinct items; prune top 1% => the single most frequent item (G_M).
  auto pruned = encoded.PruneMostFrequent(0.01);
  for (const auto& bag : pruned) EXPECT_EQ(bag.size(), 1u);
}

// ---------------------------------------------------------------------------
// InvertedIndex

TEST(InvertedIndexTest, SupportIntersection) {
  std::vector<data::ItemBag> bags = {
      {0, 1, 2}, {0, 1}, {1, 2}, {0, 1, 2, 3}};
  data::InvertedIndex index(bags, 4);
  EXPECT_EQ(index.Postings(1).size(), 4u);
  auto support = index.Support({0, 1});
  ASSERT_EQ(support.size(), 3u);
  EXPECT_EQ(support[0], 0u);
  EXPECT_EQ(support[2], 3u);
  EXPECT_EQ(index.Support({0, 2}).size(), 2u);
  EXPECT_TRUE(index.Support({3, 2, 0, 1}).size() == 1);
  EXPECT_TRUE(index.Support({}).empty());
}

// ---------------------------------------------------------------------------
// Stats

TEST(StatsTest, PatternCounts) {
  Dataset ds;
  for (int i = 0; i < 3; ++i) {
    Record r;
    r.Add(AttributeId::kFirstName, "A");
    r.Add(AttributeId::kLastName, "B");
    ds.Add(std::move(r));
  }
  Record other;
  other.Add(AttributeId::kFirstName, "A");
  ds.Add(std::move(other));
  auto stats = data::ComputePatternStats(ds);
  EXPECT_EQ(stats.NumPatterns(), 2u);
  EXPECT_EQ(stats.MostPrevalent().second, 3u);
}

TEST(StatsTest, Fig11BucketsPartitionPatterns) {
  Dataset ds;
  for (int i = 0; i < 50; ++i) {
    Record r;
    r.Add(AttributeId::kFirstName, "A");
    ds.Add(std::move(r));
  }
  auto stats = data::ComputePatternStats(ds);
  auto buckets = stats.Fig11Buckets();
  ASSERT_EQ(buckets.size(), 5u);
  size_t total_patterns = 0;
  size_t total_records = 0;
  for (const auto& b : buckets) {
    total_patterns += b.num_patterns;
    total_records += b.num_records;
  }
  EXPECT_EQ(total_patterns, stats.NumPatterns());
  EXPECT_EQ(total_records, ds.size());
  EXPECT_EQ(buckets[1].num_patterns, 1u);  // 50 records -> (10,100] bucket
}

TEST(StatsTest, Prevalence) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kFirstName, "X");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kFirstName, "Y");
  b.Add(AttributeId::kGender, "F");
  ds.Add(std::move(b));
  auto rows = data::ComputePrevalence(ds);
  EXPECT_EQ(rows[static_cast<size_t>(AttributeId::kFirstName)].num_records,
            2u);
  EXPECT_DOUBLE_EQ(
      rows[static_cast<size_t>(AttributeId::kGender)].fraction, 0.5);
}

TEST(StatsTest, Cardinality) {
  Dataset ds;
  for (const char* name : {"A", "B", "A", "A"}) {
    Record r;
    r.Add(AttributeId::kFirstName, name);
    ds.Add(std::move(r));
  }
  auto rows = data::ComputeCardinality(ds);
  const auto& fn = rows[static_cast<size_t>(AttributeId::kFirstName)];
  EXPECT_EQ(fn.num_items, 2u);
  EXPECT_DOUBLE_EQ(fn.records_per_item, 2.0);
}

// ---------------------------------------------------------------------------
// CSV I/O

TEST(CsvIoTest, RoundTrip) {
  Dataset ds;
  Record r;
  r.book_id = 1016196;
  r.source_id = 42;
  r.source_kind = data::SourceKind::kPageOfTestimony;
  r.entity_id = 5;
  r.family_id = 2;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kFirstName, "Massimo");
  r.Add(AttributeId::kLastName, "Foa");
  r.Add(AttributeId::kPermCity, "Torino");
  ds.Add(std::move(r));
  auto text = data::DatasetToCsv(ds);
  auto parsed = data::DatasetFromCsv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  const Record& back = (*parsed)[0];
  EXPECT_EQ(back.book_id, 1016196u);
  EXPECT_EQ(back.source_id, 42u);
  EXPECT_EQ(back.entity_id, 5);
  EXPECT_EQ(back.Values(AttributeId::kFirstName).size(), 2u);
  EXPECT_EQ(back.FirstValue(AttributeId::kPermCity), "Torino");
}

TEST(CsvIoTest, RejectsGarbage) {
  EXPECT_FALSE(data::DatasetFromCsv("not,a,dataset\n1,2,3\n").has_value());
  EXPECT_FALSE(data::DatasetFromCsv("").has_value());
}

}  // namespace
}  // namespace yver
