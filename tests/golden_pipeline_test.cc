// Golden end-to-end fixture: a small checked-in synthetic corpus
// (tests/golden/corpus.csv) is resolved with the recommended
// configuration and the resulting matches CSV is byte-compared against
// tests/golden/matches.csv. Pipeline regressions therefore show up as a
// reviewable diff instead of silent drift in downstream metrics.
//
// To regenerate the expectation after an intentional behavior change:
//   ./build/tests/yver_tests --gtest_filter='GoldenPipeline*' --update-golden
// then review and commit the tests/golden/ diff.
//
// The run uses the default thread count, which is safe precisely because
// of the determinism contract (tests/determinism_test.cc): output is
// byte-identical for every thread count, so the golden bytes do not
// depend on the machine's core count.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/resolution_io.h"
#include "data/csv_io.h"
#include "synth/gazetteer.h"
#include "synth/tag_oracle.h"
#include "test_flags.h"

namespace yver {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(YVER_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(GoldenPipelineTest, ResolveMatchesGoldenCsv) {
  auto dataset = data::LoadDatasetCsv(GoldenPath("corpus.csv"));
  ASSERT_TRUE(dataset.has_value()) << "missing golden corpus";
  ASSERT_GT(dataset->size(), 0u);

  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(*dataset, gazetteer.MakeGeoResolver());
  core::PipelineConfig config = core::RecommendedConfig();
  synth::TagOracle oracle(&*dataset);
  auto result = pipeline.Run(
      config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  ASSERT_FALSE(result.resolution.empty())
      << "golden corpus produced no matches; fixture is vacuous";

  std::string actual_path = ::testing::TempDir() + "golden_actual_matches.csv";
  auto saved = core::SaveMatchesCsv(*dataset, result.resolution, actual_path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  std::string actual = ReadFileBytes(actual_path);

  if (yver::testing::update_golden) {
    std::ofstream out(GoldenPath("matches.csv"), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden matches";
    out << actual;
    GTEST_SKIP() << "updated " << GoldenPath("matches.csv") << " ("
                 << result.resolution.size() << " matches)";
  }

  std::string expected = ReadFileBytes(GoldenPath("matches.csv"));
  EXPECT_EQ(actual, expected)
      << "pipeline output drifted from tests/golden/matches.csv; if the "
         "change is intentional, rerun with --update-golden and commit "
         "the diff";
}

}  // namespace
}  // namespace yver
