// Tests of the connection-lifecycle defense layer (DESIGN.md §15): the
// deadline wheel that drives it, each typed disconnect reason (idle,
// slow-loris, oversize, rate-limited, write-stall) observed end-to-end
// through the v4 kInfo gauges, bounded buffer memory against a client
// that never reads, the client-side read timeout against a silent
// server, and the chaos test: a well-behaved query fleet stays
// byte-equal to the serial baseline — and never loses a connection —
// while adversaries attack the same server.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/ranked_resolution.h"
#include "data/record.h"
#include "serve/net/adversary.h"
#include "serve/net/client.h"
#include "serve/net/deadline_wheel.h"
#include "serve/net/server.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "serve/wire.h"
#include "util/deadline.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::StatusCode;

constexpr size_t kNumRecords = 200;
constexpr size_t kNumMatches = 800;

core::RankedResolution MakeResolution(size_t num_records, size_t num_matches,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformInt(-2, 20) / 10.0;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

std::shared_ptr<const ResolutionIndex> MakeIndex() {
  return std::make_shared<const ResolutionIndex>(
      MakeResolution(kNumRecords, kNumMatches, /*seed=*/77), kNumRecords);
}

std::vector<Query> MakeWorkload(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query query;
    query.record = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(kNumRecords) - 1));
    query.certainty = rng.UniformInt(-2, 20) / 10.0;
    query.k = static_cast<size_t>(rng.UniformInt(0, 8));
    query.granularity =
        rng.Bernoulli(0.3) ? Granularity::kEntity : Granularity::kMatches;
    workload.push_back(query);
  }
  return workload;
}

/// The serial baseline: the uncached single-threaded in-process answers
/// pushed through the same codec the wire uses.
std::vector<std::string> ReferenceBytes(
    const std::shared_ptr<const ResolutionIndex>& index,
    const std::vector<Query>& workload) {
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  ResolutionService reference(index, options);
  std::vector<std::string> expected;
  expected.reserve(workload.size());
  for (const Query& query : workload) {
    std::string bytes;
    wire::EncodeResult(reference.QueryRecord(query), &bytes);
    expected.push_back(std::move(bytes));
  }
  return expected;
}

// ---------------------------------------------------------------------------
// DeadlineWheel: the timer structure under every defense timeout

using Clock = std::chrono::steady_clock;

TEST(DeadlineWheelTest, ExpiresInDeadlineOrderAcrossSlots) {
  net::DeadlineWheel wheel(std::chrono::milliseconds(10), 8);
  Clock::time_point base = Clock::now();
  wheel.Schedule(1, base + std::chrono::milliseconds(25));
  wheel.Schedule(2, base + std::chrono::milliseconds(5));
  wheel.Schedule(3, base + std::chrono::milliseconds(45));
  EXPECT_EQ(wheel.size(), 3u);

  auto fired = wheel.ExpireUntil(base + std::chrono::milliseconds(30));
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(wheel.size(), 1u);

  fired = wheel.ExpireUntil(base + std::chrono::milliseconds(60));
  EXPECT_EQ(fired, (std::vector<uint64_t>{3}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(DeadlineWheelTest, RescheduleReplacesTheOldDeadline) {
  net::DeadlineWheel wheel(std::chrono::milliseconds(10), 8);
  Clock::time_point base = Clock::now();
  wheel.Schedule(7, base + std::chrono::milliseconds(500));
  wheel.Schedule(7, base + std::chrono::milliseconds(10));  // moved earlier
  auto fired = wheel.ExpireUntil(base + std::chrono::milliseconds(20));
  EXPECT_EQ(fired, (std::vector<uint64_t>{7}));
  // The stale far-future entry must not fire again.
  fired = wheel.ExpireUntil(base + std::chrono::milliseconds(600));
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(DeadlineWheelTest, CancelPreventsFiring) {
  net::DeadlineWheel wheel(std::chrono::milliseconds(10), 8);
  Clock::time_point base = Clock::now();
  wheel.Schedule(4, base + std::chrono::milliseconds(15));
  wheel.Cancel(4);
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_TRUE(wheel.ExpireUntil(base + std::chrono::seconds(1)).empty());
}

TEST(DeadlineWheelTest, FutureRoundEntriesDoNotFireEarly) {
  // 8 slots x 10 ms = an 80 ms round; a 250 ms deadline shares a slot
  // with near-term ticks and must survive the earlier passes.
  net::DeadlineWheel wheel(std::chrono::milliseconds(10), 8);
  Clock::time_point base = Clock::now();
  wheel.Schedule(9, base + std::chrono::milliseconds(250));
  EXPECT_TRUE(
      wheel.ExpireUntil(base + std::chrono::milliseconds(100)).empty());
  EXPECT_TRUE(
      wheel.ExpireUntil(base + std::chrono::milliseconds(200)).empty());
  auto fired = wheel.ExpireUntil(base + std::chrono::milliseconds(260));
  EXPECT_EQ(fired, (std::vector<uint64_t>{9}));
}

TEST(DeadlineWheelTest, MillisUntilNextIsConservative) {
  net::DeadlineWheel wheel(std::chrono::milliseconds(10), 8);
  Clock::time_point base = Clock::now();
  EXPECT_EQ(wheel.MillisUntilNext(base), -1);  // empty: sleep forever
  wheel.Schedule(1, base + std::chrono::milliseconds(35));
  int ms = wheel.MillisUntilNext(base);
  ASSERT_GE(ms, 1);   // never a busy-loop zero while nothing is due
  EXPECT_LE(ms, 35);  // never oversleeps past the deadline
  // Once due, the wait collapses to zero.
  EXPECT_EQ(wheel.MillisUntilNext(base + std::chrono::milliseconds(40)), 0);
}

// ---------------------------------------------------------------------------
// Targeted defenses, each observed over the wire through the v4 gauges

net::ServerOptions FastTickOptions() {
  net::ServerOptions options;
  options.timer_tick_ms = 5;
  return options;
}

TEST(HostileNetTest, IdleConnectionIsDisconnectedAndCounted) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.idle_timeout_ms = 100;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto idle = net::Client::Connect(server.port());
  ASSERT_TRUE(idle.ok());
  // One served round trip first: the timeout must measure idleness from
  // the last activity, not from connect.
  auto workload = MakeWorkload(1, 3);
  auto answer = idle->Call(workload[0]);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  // Then silence: the server must hang up on its own.
  auto next = idle->ReadFrameBytes(util::Deadline::AfterMillis(5000));
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable)
      << next.status().ToString();

  auto probe = net::Client::Connect(server.port());
  ASSERT_TRUE(probe.ok());
  auto info = probe->Info(util::Deadline::AfterMillis(5000));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->net.disconnects_idle, 1u);
  EXPECT_EQ(info->net.open_connections, 1u);  // just the probe itself
  server.Shutdown();
  EXPECT_EQ(server.stats().disconnects_idle, 1u);
}

TEST(HostileNetTest, SlowlorisIsDisconnectedWithTypedReason) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.min_read_bytes_per_sec = 50;
  options.progress_window_ms = 200;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  net::AdversaryOptions attack;
  attack.port = server.port();
  attack.mode = net::AdversaryMode::kSlowloris;
  attack.connections = 2;
  attack.duration_ms = 5000;          // far beyond the expected kill time
  attack.write_interval_ms = 100;     // ~10 B/s, well under 50
  auto report = net::RunAdversary(attack);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->connections_opened, 2u);
  EXPECT_EQ(report->server_closed, 2u)
      << net::FormatAdversaryReport(attack.mode, *report);

  auto probe = net::Client::Connect(server.port());
  ASSERT_TRUE(probe.ok());
  auto info = probe->Info(util::Deadline::AfterMillis(5000));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->net.disconnects_slowloris, 2u);
  server.Shutdown();
}

TEST(HostileNetTest, DribblePacedAboveMinRateIsServedNotDisconnected) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.min_read_bytes_per_sec = 50;
  options.progress_window_ms = 200;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // A genuinely slow but live client: one byte every 2 ms is ~500 B/s,
  // an order of magnitude above the minimum — it must be served.
  net::AdversaryOptions attack;
  attack.port = server.port();
  attack.mode = net::AdversaryMode::kDribble;
  attack.connections = 2;
  attack.duration_ms = 1500;
  attack.write_interval_ms = 2;
  auto report = net::RunAdversary(attack);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->server_closed, 0u)
      << net::FormatAdversaryReport(attack.mode, *report);
  EXPECT_GT(report->responses_read, 0u);
  EXPECT_EQ(report->responses_read, report->ok_responses);
  net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.disconnects_slowloris, 0u);
  server.Shutdown();
}

TEST(HostileNetTest, RateLimitedQueriesGetTypedErrorsInOrder) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.conn_rate_limit = 5;
  options.conn_rate_burst = 1;
  options.rate_limit_disconnect_streak = 0;  // typed answers, never drop
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto workload = MakeWorkload(10, 11);
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (const Query& query : workload) {
    ASSERT_TRUE(client->SendQuery(query).ok());
  }
  size_t ok = 0;
  size_t limited = 0;
  bool first_was_ok = false;
  for (size_t i = 0; i < workload.size(); ++i) {
    auto result = client->ReadResult(util::Deadline::AfterMillis(5000));
    if (result.ok()) {
      ++ok;
      if (i == 0) first_was_ok = true;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << result.status().ToString();
      ++limited;
    }
  }
  // The bucket admits the first query instantly; a 10-query burst at 5/s
  // must see most of the rest limited — every one with a typed error
  // frame, in request order, on a connection that stays up.
  EXPECT_TRUE(first_was_ok);
  EXPECT_GE(limited, 5u);
  EXPECT_EQ(ok + limited, workload.size());
  auto info = client->Info(util::Deadline::AfterMillis(5000));
  ASSERT_TRUE(info.ok()) << info.status().ToString();  // info is exempt
  EXPECT_EQ(info->net.rate_limited_frames, limited);
  EXPECT_EQ(info->net.disconnects_rate_limited, 0u);
  server.Shutdown();
}

TEST(HostileNetTest, SustainedRateFloodIsDisconnected) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.conn_rate_limit = 2;
  options.conn_rate_burst = 1;
  options.rate_limit_disconnect_streak = 3;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto workload = MakeWorkload(30, 13);
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (const Query& query : workload) {
    util::Status sent = client->SendQuery(query);
    if (!sent.ok()) break;  // server may already have hung up
  }
  // Every read from here on ends in the server's close; drain until EOF.
  bool saw_eof = false;
  for (size_t i = 0; i < workload.size() + 1; ++i) {
    auto result =
        client->ReadFrameBytes(util::Deadline::AfterMillis(5000));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
          << result.status().ToString();
      saw_eof = true;
      break;
    }
  }
  EXPECT_TRUE(saw_eof);

  auto probe = net::Client::Connect(server.port());
  ASSERT_TRUE(probe.ok());
  auto info = probe->Info(util::Deadline::AfterMillis(5000));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->net.disconnects_rate_limited, 1u);
  EXPECT_GE(info->net.rate_limited_frames, 3u);
  server.Shutdown();
}

TEST(HostileNetTest, OversizeDeclaredFrameIsRejectedBeforeBuffering) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.max_frame_payload = 1024;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // A valid envelope declaring 1 MiB — legal for the protocol, far over
  // this server's cap. Only the 8 header bytes ever go on the wire.
  constexpr uint32_t kDeclared = 1u << 20;
  std::string header;
  header.push_back(0x59);
  header.push_back(0x57);
  header.push_back(static_cast<char>(wire::kVersion));
  header.push_back(static_cast<char>(wire::FrameType::kQuery));
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((kDeclared >> (8 * i)) & 0xff));
  }
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendBytes(header).ok());
  // The rejection must not wait for the declared payload: the typed
  // error frame answers the bare header.
  auto result = client->ReadResult(util::Deadline::AfterMillis(5000));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  auto eof = client->ReadFrameBytes(util::Deadline::AfterMillis(5000));
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);

  net::ServerStats stats = server.stats();
  EXPECT_EQ(stats.disconnects_oversize, 1u);
  EXPECT_LT(stats.peak_in_buffer, 1024u)
      << "the phantom payload must never be buffered";
  server.Shutdown();
}

TEST(HostileNetTest, NeverReadClientIsBoundedAndDropped) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::ServerOptions options = FastTickOptions();
  options.max_out_buffer = 64u << 10;
  // Without the clamp the kernel send buffer auto-tunes to megabytes and
  // absorbs responses the dead reader never drains, so the userspace
  // backlog the cap judges would stay deceptively small.
  options.so_sndbuf = 64u << 10;
  options.write_stall_timeout_ms = 300;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  net::AdversaryOptions attack;
  attack.port = server.port();
  attack.mode = net::AdversaryMode::kNeverRead;
  attack.connections = 2;
  attack.duration_ms = 10000;  // the server must end it long before this
  auto report = net::RunAdversary(attack);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->server_closed, 2u)
      << net::FormatAdversaryReport(attack.mode, *report);

  net::ServerStats stats = server.stats();
  EXPECT_GE(stats.disconnects_write_stall, 2u);
  // The memory bound: the response backlog never ran away past the cap
  // by more than one in-flight batch's worth of responses.
  EXPECT_LE(stats.peak_out_buffer, (64u << 10) + (64u << 10))
      << "out buffer must stay near the configured cap";
  server.Shutdown();
}

TEST(HostileNetTest, GarbageGetsOneTypedErrorThenEof) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::Server server(service, FastTickOptions());
  ASSERT_TRUE(server.Start().ok());

  net::AdversaryOptions attack;
  attack.port = server.port();
  attack.mode = net::AdversaryMode::kGarbage;
  attack.connections = 3;
  attack.duration_ms = 5000;
  auto report = net::RunAdversary(attack);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->error_responses, 3u)
      << net::FormatAdversaryReport(attack.mode, *report);
  EXPECT_EQ(report->server_closed, 3u);
  EXPECT_GE(server.stats().protocol_errors, 3u);
  server.Shutdown();
}

TEST(HostileNetTest, HalfCloseDeliversEveryAnswerThenCleanEof) {
  auto service = std::make_shared<ResolutionService>(MakeIndex());
  net::Server server(service, FastTickOptions());
  ASSERT_TRUE(server.Start().ok());

  net::AdversaryOptions attack;
  attack.port = server.port();
  attack.mode = net::AdversaryMode::kHalfClose;
  attack.connections = 3;
  attack.duration_ms = 10000;
  auto report = net::RunAdversary(attack);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 16 queries per connection, every one answered, then clean EOF.
  EXPECT_EQ(report->frames_sent, 3u * 16u);
  EXPECT_EQ(report->responses_read, 3u * 16u)
      << net::FormatAdversaryReport(attack.mode, *report);
  EXPECT_EQ(report->ok_responses, 3u * 16u);
  EXPECT_EQ(report->clean_eofs, 3u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Satellite: the client read timeout against a server that never answers

TEST(HostileNetTest, ClientReadTimesOutAgainstSilentServer) {
  // A listener that accepts into the kernel backlog and never answers.
  auto listener = util::Socket::Listen(0);
  ASSERT_TRUE(listener.ok());
  auto port = listener->LocalPort();
  ASSERT_TRUE(port.ok());

  auto client = net::Client::Connect(*port);
  ASSERT_TRUE(client.ok());
  client->set_read_timeout_ms(100);
  auto workload = MakeWorkload(1, 19);
  ASSERT_TRUE(client->SendQuery(workload[0]).ok());
  auto start = Clock::now();
  auto result = client->ReadResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_LT(Clock::now() - start, std::chrono::seconds(5))
      << "the timeout, not a hang";
  // An explicit per-call deadline still wins over the knob.
  auto longer = client->ReadFrameBytes(util::Deadline::AfterMillis(1));
  ASSERT_FALSE(longer.ok());
  EXPECT_EQ(longer.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// The chaos test: byte-equality and liveness under simultaneous attack

TEST(HostileNetTest, FleetStaysByteEqualToSerialBaselineUnderAttack) {
  auto index = MakeIndex();

  for (size_t threads : {1u, 2u, 8u}) {
    ServiceOptions service_options;
    service_options.num_threads = threads;
    auto service =
        std::make_shared<ResolutionService>(index, service_options);
    net::ServerOptions server_options = FastTickOptions();
    server_options.dispatch_threads = threads;
    server_options.max_batch = 16;
    // Defenses armed the way a hostile deployment would run them — except
    // rate limits, which would throttle the legitimate fleet too.
    server_options.min_read_bytes_per_sec = 50;
    server_options.progress_window_ms = 300;
    server_options.max_out_buffer = 256u << 10;
    server_options.write_stall_timeout_ms = 400;
    server_options.idle_timeout_ms = 60000;
    net::Server server(service, server_options);
    ASSERT_TRUE(server.Start().ok());

    // The attackers, concurrently with the fleet.
    std::atomic<bool> adversaries_ok{true};
    std::vector<std::thread> attackers;
    auto attack = [&](net::AdversaryMode mode, size_t connections,
                      double interval_ms) {
      net::AdversaryOptions o;
      o.port = server.port();
      o.mode = mode;
      o.connections = connections;
      o.duration_ms = 1500;
      o.write_interval_ms = interval_ms;
      o.seed = 29 + static_cast<uint64_t>(mode);
      auto report = net::RunAdversary(o);
      if (!report.ok()) adversaries_ok.store(false);
    };
    attackers.emplace_back(
        [&] { attack(net::AdversaryMode::kSlowloris, 2, 100); });
    attackers.emplace_back(
        [&] { attack(net::AdversaryMode::kNeverRead, 2, 50); });
    attackers.emplace_back(
        [&] { attack(net::AdversaryMode::kGarbage, 1, 50); });

    // The well-behaved fleet: every thread checks its answers byte-for-
    // byte against the serial baseline, live, while the attack runs.
    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> fleet_failures{0};
    std::vector<std::thread> fleet;
    for (size_t t = 0; t < threads; ++t) {
      fleet.emplace_back([&, t] {
        auto workload = MakeWorkload(120, 100 + t);
        auto expected = ReferenceBytes(index, workload);
        auto client = net::Client::Connect(server.port());
        if (!client.ok()) {
          fleet_failures.fetch_add(1);
          return;
        }
        client->set_read_timeout_ms(30000);
        for (size_t i = 0; i < workload.size(); ++i) {
          if (!client->SendQuery(workload[i]).ok()) {
            fleet_failures.fetch_add(1);
            return;
          }
          auto response = client->ReadFrameBytes();
          if (!response.ok()) {
            // Any failure here means a well-behaved connection was
            // disconnected — the defense layer overreached.
            fleet_failures.fetch_add(1);
            return;
          }
          if (*response != expected[i]) mismatches.fetch_add(1);
        }
      });
    }
    for (std::thread& t : fleet) t.join();
    for (std::thread& t : attackers) t.join();

    EXPECT_TRUE(adversaries_ok.load());
    EXPECT_EQ(fleet_failures.load(), 0u)
        << "a well-behaved connection was disconnected at " << threads
        << " fleet threads";
    EXPECT_EQ(mismatches.load(), 0u)
        << "wire answers diverged from the serial baseline under attack";

    // The defenses fired on the attackers and the memory bound held.
    net::ServerStats stats = server.stats();
    EXPECT_GE(stats.disconnects_slowloris, 1u);
    EXPECT_LE(stats.peak_out_buffer, (256u << 10) + (256u << 10));
    // And the gauges tell the same story over the wire (v4 end-to-end).
    auto probe = net::Client::Connect(server.port());
    ASSERT_TRUE(probe.ok());
    auto info = probe->Info(util::Deadline::AfterMillis(5000));
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->net.disconnects_slowloris,
              stats.disconnects_slowloris);
    server.Shutdown();
  }
}

}  // namespace
}  // namespace yver::serve
