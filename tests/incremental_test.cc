#include <algorithm>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/pipeline.h"
#include "ml/adtree_trainer.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace yver::core {
namespace {

using data::AttributeId;
using data::Record;

// Builds a small resolved corpus + trained model, returning the resolver
// plus the held-out tail of reports to stream in.
struct Fixture {
  synth::GeneratedData generated;
  data::Dataset initial;
  std::vector<Record> arrivals;
  synth::Gazetteer gazetteer;  // must outlive the resolver's GeoResolver
  std::unique_ptr<IncrementalResolver> resolver;

  explicit Fixture(size_t num_persons = 500, size_t held_out = 60) {
    synth::GeneratorConfig config = synth::ItalyConfig();
    config.num_persons = num_persons;
    config.include_mv = false;
    generated = synth::Generate(config);
    // Hold out a strided sample as future arrivals (a person's reports
    // are contiguous in generation order, so holding out a suffix would
    // remove whole persons and leave nothing to match against).
    size_t stride = std::max<size_t>(2, generated.dataset.size() / held_out);
    for (size_t r = 0; r < generated.dataset.size(); ++r) {
      if (r % stride == 1 && arrivals.size() < held_out) {
        arrivals.push_back(
            generated.dataset[static_cast<data::RecordIdx>(r)]);
      } else {
        initial.Add(generated.dataset[static_cast<data::RecordIdx>(r)]);
      }
    }
    UncertainErPipeline pipeline(initial, gazetteer.MakeGeoResolver());
    synth::TagOracle oracle(&initial);
    PipelineConfig pc = RecommendedConfig();
    auto result = pipeline.Run(
        pc, [&](data::RecordIdx a, data::RecordIdx b) {
          return oracle.Tag(a, b);
        });
    resolver = std::make_unique<IncrementalResolver>(
        initial, result.resolution, result.model,
        gazetteer.MakeGeoResolver());
  }
};

TEST(IncrementalResolverTest, IngestGrowsDatasetAndKeepsOldMatches) {
  Fixture fx;
  size_t before_records = fx.resolver->dataset().size();
  size_t before_matches = fx.resolver->num_matches();
  fx.resolver->AddRecord(fx.arrivals[0]);
  EXPECT_EQ(fx.resolver->dataset().size(), before_records + 1);
  EXPECT_GE(fx.resolver->num_matches(), before_matches);
}

TEST(IncrementalResolverTest, FindsDuplicatesOfArrivingReports) {
  Fixture fx;
  size_t arrivals_with_truth = 0;
  size_t arrivals_matched_correctly = 0;
  for (const auto& record : fx.arrivals) {
    // Does the initial corpus contain a report of the same person?
    bool has_partner = false;
    for (const auto& existing : fx.initial.records()) {
      if (existing.entity_id == record.entity_id) {
        has_partner = true;
        break;
      }
    }
    data::RecordIdx idx = fx.resolver->AddRecord(record);
    if (!has_partner) continue;
    ++arrivals_with_truth;
    for (const auto& m : fx.resolver->last_matches()) {
      data::RecordIdx other = m.pair.a == idx ? m.pair.b : m.pair.a;
      if (fx.resolver->dataset()[other].entity_id == record.entity_id) {
        ++arrivals_matched_correctly;
        break;
      }
    }
  }
  ASSERT_GT(arrivals_with_truth, 5u);
  // The streaming path should recover most duplicates of new arrivals.
  EXPECT_GT(static_cast<double>(arrivals_matched_correctly) /
                static_cast<double>(arrivals_with_truth),
            0.6);
}

TEST(IncrementalResolverTest, MatchesArePrecise) {
  Fixture fx;
  size_t true_matches = 0;
  size_t false_matches = 0;
  for (const auto& record : fx.arrivals) {
    data::RecordIdx idx = fx.resolver->AddRecord(record);
    for (const auto& m : fx.resolver->last_matches()) {
      data::RecordIdx other = m.pair.a == idx ? m.pair.b : m.pair.a;
      if (fx.resolver->dataset()[other].entity_id == record.entity_id &&
          record.entity_id != data::kUnknownEntity) {
        ++true_matches;
      } else {
        ++false_matches;
      }
    }
  }
  EXPECT_GT(true_matches, false_matches);
}

TEST(IncrementalResolverTest, ResolutionMergesOldAndNew) {
  Fixture fx(300, 30);
  size_t initial_matches = fx.resolver->num_matches();
  for (const auto& record : fx.arrivals) fx.resolver->AddRecord(record);
  RankedResolution resolution = fx.resolver->Resolution();
  EXPECT_GE(resolution.size(), initial_matches);
  // Sorted by confidence.
  for (size_t i = 1; i < resolution.matches().size(); ++i) {
    EXPECT_GE(resolution.matches()[i - 1].confidence,
              resolution.matches()[i].confidence);
  }
}

TEST(IncrementalResolverTest, NewItemsExtendDictionary) {
  Fixture fx(200, 10);
  Record exotic;
  exotic.book_id = 999;
  exotic.entity_id = data::kUnknownEntity;
  exotic.Add(AttributeId::kFirstName, "Zerubavel");
  exotic.Add(AttributeId::kLastName, "Qwertyson");
  data::RecordIdx idx = fx.resolver->AddRecord(exotic);
  EXPECT_TRUE(fx.resolver->last_matches().empty());
  // Re-adding a copy now matches the first via the fresh postings.
  Record copy;
  copy.book_id = 1000;
  copy.entity_id = data::kUnknownEntity;
  copy.Add(AttributeId::kFirstName, "Zerubavel");
  copy.Add(AttributeId::kLastName, "Qwertyson");
  data::RecordIdx idx2 = fx.resolver->AddRecord(copy);
  bool found = false;
  for (const auto& m : fx.resolver->last_matches()) {
    if (m.pair == data::RecordPair(idx, idx2)) found = true;
  }
  // The pair shares both items; whether it clears the classifier depends
  // on the model, but it must at least have been scored — assert via the
  // candidate rule: 2 shared items >= min_shared_items. If the classifier
  // accepted it, it is in last_matches.
  if (!fx.resolver->last_matches().empty()) {
    EXPECT_TRUE(found);
  }
  SUCCEED();
}

}  // namespace
}  // namespace yver::core
