// End-to-end integration tests: the full uncertain-ER system exercised on
// synthetic corpora across seeds and configurations, checking the
// invariants the paper's evaluation relies on.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/gold_standard.h"
#include "core/incremental.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "probdb/calibration.h"
#include "probdb/uncertain_graph.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace yver {
namespace {

struct Corpus {
  synth::GeneratedData generated;
  synth::Gazetteer gazetteer;
  std::unique_ptr<core::UncertainErPipeline> pipeline;
  std::unique_ptr<synth::TagOracle> oracle;

  explicit Corpus(uint64_t seed, size_t persons = 700) {
    synth::GeneratorConfig config = synth::ItalyConfig();
    config.num_persons = persons;
    config.seed = seed;
    generated = synth::Generate(config);
    pipeline = std::make_unique<core::UncertainErPipeline>(
        generated.dataset, gazetteer.MakeGeoResolver());
    oracle = std::make_unique<synth::TagOracle>(&generated.dataset);
  }

  core::PairTagger Tagger() {
    return [this](data::RecordIdx a, data::RecordIdx b) {
      return oracle->Tag(a, b);
    };
  }
};

class EndToEndSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndSeedTest, RecommendedConfigProducesQualityResolution) {
  Corpus corpus(GetParam());
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  ASSERT_FALSE(result.resolution.empty());
  auto q = core::EvaluateMatches(corpus.generated.dataset,
                                 result.resolution.matches());
  // The classified pipeline is precise and finds a solid share of pairs.
  EXPECT_GT(q.Precision(), 0.8) << "seed " << GetParam();
  EXPECT_GT(q.Recall(), 0.3) << "seed " << GetParam();
  // The model is compact, as in the paper (8-10 features).
  EXPECT_LE(result.model.UsedFeatures().size(), 12u);
  EXPECT_GE(result.model.UsedFeatures().size(), 3u);
}

TEST_P(EndToEndSeedTest, CertaintyDialIsMonotone) {
  Corpus corpus(GetParam());
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  size_t previous = 0;
  double previous_precision = 0.0;
  bool first = true;
  for (double certainty : {3.0, 2.0, 1.0, 0.0}) {
    auto matches = result.resolution.AboveThreshold(certainty);
    EXPECT_GE(matches.size(), previous);
    previous = matches.size();
    if (matches.empty()) continue;
    auto q = core::EvaluateMatches(corpus.generated.dataset, matches);
    if (!first) {
      // Precision should not *improve* much as the threshold loosens.
      EXPECT_LE(q.Precision(), previous_precision + 0.05);
    }
    previous_precision = q.Precision();
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndSeedTest,
                         ::testing::Values(101, 202, 303));

TEST(EndToEndTest, TaggedStandardProtocolIsConsistent) {
  Corpus corpus(42);
  auto standard = core::BuildTaggedStandard(
      *corpus.pipeline,
      [] {
        std::vector<blocking::MfiBlocksConfig> configs(2);
        configs[0].max_minsup = 5;
        configs[0].ng = 3.0;
        configs[1].max_minsup = 4;
        configs[1].ng = 4.0;
        return configs;
      }(),
      corpus.Tagger());
  ASSERT_GT(standard.num_positive, 0u);
  // A config that contributed to the standard cannot exceed recall 1 and
  // its candidates are all tagged.
  blocking::MfiBlocksConfig config;
  config.max_minsup = 5;
  config.ng = 3.0;
  auto result = corpus.pipeline->RunBlocking(config);
  for (const auto& cp : result.pairs) {
    EXPECT_TRUE(standard.TagOf(cp.pair).has_value());
  }
  auto q = core::EvaluateAgainstStandard(standard, result.pairs);
  EXPECT_LE(q.Recall(), 1.0);
  EXPECT_GT(q.Recall(), 0.3);
}

TEST(EndToEndTest, ExpertWeightingRaisesRecall) {
  Corpus corpus(7);
  blocking::MfiBlocksConfig base;
  base.max_minsup = 5;
  base.ng = 3.5;
  auto base_result = corpus.pipeline->RunBlocking(base);
  blocking::MfiBlocksConfig weighted = base;
  weighted.expert_weighting = true;
  auto weighted_result = corpus.pipeline->RunBlocking(weighted);
  auto base_q =
      core::EvaluatePairs(corpus.generated.dataset, base_result.pairs);
  auto weighted_q = core::EvaluatePairs(corpus.generated.dataset,
                                        weighted_result.pairs);
  EXPECT_GT(weighted_q.Recall(), base_q.Recall());
}

TEST(EndToEndTest, ClassifierImprovesPrecisionOverBlocking) {
  Corpus corpus(13);
  core::PipelineConfig with_cls = core::RecommendedConfig();
  core::PipelineConfig without_cls = with_cls;
  without_cls.use_classifier = false;
  auto classified = corpus.pipeline->Run(with_cls, corpus.Tagger());
  auto raw = corpus.pipeline->Run(without_cls, corpus.Tagger());
  auto q_cls = core::EvaluateMatches(corpus.generated.dataset,
                                     classified.resolution.matches());
  auto q_raw = core::EvaluateMatches(corpus.generated.dataset,
                                     raw.resolution.matches());
  EXPECT_GT(q_cls.Precision(), q_raw.Precision());
}

TEST(EndToEndTest, EntityClustersRespectDuplicateBound) {
  Corpus corpus(99);
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  core::EntityClusters clusters(result.resolution,
                                corpus.generated.dataset.size(), 0.0);
  // Archival experts bound duplicate sets at 8 (+1 MV); clusters at the
  // strict person level should not balloon far beyond that.
  EXPECT_LE(clusters.clusters().front().size(), 16u);
}

TEST(EndToEndTest, NarrativesRenderForAllClusters) {
  Corpus corpus(55, 300);
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  core::EntityClusters clusters(result.resolution,
                                corpus.generated.dataset.size(), 0.0);
  for (const auto& cluster : clusters.clusters()) {
    auto profile = core::BuildProfile(corpus.generated.dataset, cluster);
    std::string text = core::RenderNarrative(profile);
    EXPECT_FALSE(text.empty());
    EXPECT_NE(text.find("Based on"), std::string::npos);
  }
}

TEST(EndToEndTest, ProbabilisticCountsBracketTruth) {
  Corpus corpus(77, 400);
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  std::vector<double> scores;
  std::vector<int> labels;
  for (const auto& inst : result.training_instances) {
    scores.push_back(result.model.Score(inst.features));
    labels.push_back(inst.label);
  }
  auto scaler = probdb::PlattScaler::Fit(scores, labels);
  probdb::UncertainMatchGraph graph(result.resolution,
                                    corpus.generated.dataset.size(), scaler);
  util::Rng rng(5);
  auto [mean, stddev] = graph.ExpectedNumEntities(60, rng);
  double truth = static_cast<double>(
      corpus.generated.dataset.GroupByEntity().size());
  // The expected count lies between the report count (no merging) and a
  // floor below the truth (over-merging would go under).
  EXPECT_LT(mean, static_cast<double>(corpus.generated.dataset.size()));
  EXPECT_GT(mean, truth * 0.8);
  EXPECT_GE(stddev, 0.0);
}

TEST(EndToEndTest, IncrementalAgreesWithItsModel) {
  Corpus corpus(31, 300);
  auto result =
      corpus.pipeline->Run(core::RecommendedConfig(), corpus.Tagger());
  core::IncrementalResolver resolver(corpus.generated.dataset,
                                     result.resolution, result.model,
                                     corpus.gazetteer.MakeGeoResolver());
  // Streaming a copy of an existing record must match its original with
  // the highest available confidence.
  data::Record copy = corpus.generated.dataset[0];
  copy.book_id = 9999999;
  data::RecordIdx idx = resolver.AddRecord(copy);
  ASSERT_FALSE(resolver.last_matches().empty());
  bool found_original = false;
  for (const auto& m : resolver.last_matches()) {
    data::RecordIdx other = m.pair.a == idx ? m.pair.b : m.pair.a;
    if (other == 0) found_original = true;
  }
  EXPECT_TRUE(found_original);
}

TEST(EndToEndTest, SubmitterTableIsResolvable) {
  Corpus corpus(3, 600);
  const auto& submitters = corpus.generated.submitters;
  ASSERT_GT(submitters.size(), 100u);
  EXPECT_GT(submitters.NumGoldPairs(), 10u);
  core::UncertainErPipeline pipeline(submitters,
                                     corpus.gazetteer.MakeGeoResolver());
  blocking::MfiBlocksConfig config;
  config.max_minsup = 4;
  config.ng = 3.0;
  config.expert_weighting = true;
  auto result = pipeline.RunBlocking(config);
  auto q = core::EvaluatePairs(submitters, result.pairs);
  EXPECT_GT(q.Recall(), 0.4);
}

}  // namespace
}  // namespace yver
