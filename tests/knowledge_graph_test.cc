#include <gtest/gtest.h>

#include "core/knowledge_graph.h"

namespace yver::core {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

Dataset GuidoDataset() {
  Dataset ds;
  Record r;
  r.book_id = 1059654;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foa");
  r.Add(AttributeId::kFathersName, "Donato");
  r.Add(AttributeId::kMothersName, "Olga");
  r.Add(AttributeId::kSpouseName, "Helena");
  r.Add(AttributeId::kBirthYear, "1920");
  r.Add(AttributeId::kBirthCity, "Torino");
  r.Add(AttributeId::kPermCity, "Torino");
  r.Add(AttributeId::kDeathCity, "Auschwitz");
  ds.Add(std::move(r));
  Record h;
  h.book_id = 1059900;
  h.Add(AttributeId::kFirstName, "Helena");
  h.Add(AttributeId::kLastName, "Foa");
  h.Add(AttributeId::kSpouseName, "Guido");
  h.Add(AttributeId::kPermCity, "Torino");
  ds.Add(std::move(h));
  return ds;
}

TEST(KnowledgeGraphTest, EntitySubgraphHasPlacesRelativesReports) {
  Dataset ds = GuidoDataset();
  KnowledgeGraph graph;
  size_t guido = graph.AddEntity(ds, {0});
  EXPECT_EQ(graph.nodes()[guido].kind, KnowledgeGraph::NodeKind::kPerson);
  // Nodes: person, Torino (shared for birth+perm), Auschwitz, 3 relatives,
  // 1 report.
  size_t places = 0, relatives = 0, reports = 0;
  for (const auto& n : graph.nodes()) {
    places += n.kind == KnowledgeGraph::NodeKind::kPlace;
    relatives += n.kind == KnowledgeGraph::NodeKind::kRelative;
    reports += n.kind == KnowledgeGraph::NodeKind::kReport;
  }
  EXPECT_EQ(places, 2u);  // Torino shared, Auschwitz
  EXPECT_EQ(relatives, 3u);
  EXPECT_EQ(reports, 1u);
  // Edges include "perished in".
  bool perished = false;
  for (const auto& e : graph.edges()) {
    if (e.label == "perished in") perished = true;
  }
  EXPECT_TRUE(perished);
}

TEST(KnowledgeGraphTest, SharedPlaceNodesMerge) {
  Dataset ds = GuidoDataset();
  KnowledgeGraph graph;
  graph.AddEntity(ds, {0});
  size_t nodes_after_first = graph.nodes().size();
  graph.AddEntity(ds, {1});
  // Helena adds: her person node, a report node — Torino is reused.
  EXPECT_EQ(graph.nodes().size(), nodes_after_first + 3u);  // person,
                                                            // report,
                                                            // relative
}

TEST(KnowledgeGraphTest, LinkSpousesCrossReferences) {
  Dataset ds = GuidoDataset();
  KnowledgeGraph graph;
  graph.AddEntity(ds, {0});
  graph.AddEntity(ds, {1});
  EXPECT_EQ(graph.LinkSpouses(), 1u);
  bool married = false;
  for (const auto& e : graph.edges()) {
    if (e.label == "married to") married = true;
  }
  EXPECT_TRUE(married);
}

TEST(KnowledgeGraphTest, DotOutputIsWellFormed) {
  Dataset ds = GuidoDataset();
  KnowledgeGraph graph;
  graph.AddEntity(ds, {0});
  std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("digraph yver {"), std::string::npos);
  EXPECT_NE(dot.find("Guido Foa"), std::string::npos);
  EXPECT_NE(dot.find("Auschwitz"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(KnowledgeGraphTest, FromClustersTakesLargestMultiRecord) {
  Dataset ds = GuidoDataset();
  std::vector<RankedMatch> matches = {{data::RecordPair(0, 1), 1.0, 0.5}};
  RankedResolution resolution(std::move(matches));
  EntityClusters clusters(resolution, ds.size(), 0.0);
  auto graph = KnowledgeGraph::FromClusters(ds, clusters, 5);
  size_t persons = 0;
  for (const auto& n : graph.nodes()) {
    persons += n.kind == KnowledgeGraph::NodeKind::kPerson;
  }
  EXPECT_EQ(persons, 1u);  // the merged Guido+Helena cluster
}

}  // namespace
}  // namespace yver::core
