// Tests of the live-index layer (DESIGN.md §13): IndexManager's
// pin/publish/retire lifecycle, the generation-keyed service cache, and
// LiveIndexBuilder's append-to-publish pipeline. The swap-under-load
// chaos matrix lives in chaos_test.cc; these are the targeted unit and
// integration tests behind it.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "serve/index_manager.h"
#include "serve/ingest.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::FaultConfig;
using util::FaultInjector;
using util::FaultPoint;
using util::StatusCode;

class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultInjector::Global().Arm(config);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
};

core::RankedResolution MakeResolution(size_t num_records, size_t num_matches,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformInt(1, 20) / 20.0;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

std::shared_ptr<const ResolutionIndex> MakeIndex(size_t num_records,
                                                 size_t num_matches,
                                                 uint64_t seed) {
  return std::make_shared<const ResolutionIndex>(
      MakeResolution(num_records, num_matches, seed), num_records);
}

// ---------------------------------------------------------------------------
// IndexManager: pin / publish / retire

TEST(IndexManagerTest, StartsAtGenerationOne) {
  IndexManager manager(MakeIndex(16, 32, 1));
  EXPECT_EQ(manager.generation(), 1u);
  EXPECT_EQ(manager.publishes(), 0u);
  EXPECT_EQ(manager.pinned_readers(), 0u);
  EXPECT_EQ(manager.retained_snapshots(), 1u);
  PinnedIndex pin = manager.Acquire();
  ASSERT_TRUE(pin.valid());
  EXPECT_EQ(pin.generation(), 1u);
  EXPECT_EQ(pin->num_records(), 16u);
}

TEST(IndexManagerTest, PublishSequencesGenerations) {
  IndexManager manager(MakeIndex(16, 32, 1));
  for (uint64_t expected = 2; expected <= 10; ++expected) {
    auto published = manager.Publish(MakeIndex(16, 32, expected));
    ASSERT_TRUE(published.ok());
    EXPECT_EQ(*published, expected);
    EXPECT_EQ(manager.generation(), expected);
    EXPECT_EQ(manager.Acquire().generation(), expected);
  }
  EXPECT_EQ(manager.publishes(), 9u);
}

TEST(IndexManagerTest, PinnedReaderKeepsItsGenerationAlive) {
  auto initial = MakeIndex(16, 32, 1);
  std::weak_ptr<const ResolutionIndex> watch = initial;
  IndexManager manager(std::move(initial));

  PinnedIndex pin = manager.Acquire();
  EXPECT_EQ(manager.pinned_readers(), 1u);
  ASSERT_TRUE(manager.Publish(MakeIndex(16, 32, 2)).ok());

  // The retired generation survives exactly as long as its last pin.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(manager.retained_snapshots(), 2u);
  EXPECT_EQ(pin.generation(), 1u);
  EXPECT_EQ(pin->num_records(), 16u);  // still readable after the swap

  pin.Release();
  EXPECT_TRUE(watch.expired()) << "retired snapshot must be freed on the "
                                  "last release";
  EXPECT_EQ(manager.retained_snapshots(), 1u);
  EXPECT_EQ(manager.pinned_readers(), 0u);
}

TEST(IndexManagerTest, PinnedReadersGaugeCountsAndDrains) {
  IndexManager manager(MakeIndex(16, 32, 1));
  std::vector<PinnedIndex> pins;
  for (int i = 0; i < 5; ++i) pins.push_back(manager.Acquire());
  EXPECT_EQ(manager.pinned_readers(), 5u);
  pins.clear();  // dtor releases
  EXPECT_EQ(manager.pinned_readers(), 0u);
}

TEST(IndexManagerTest, ReleaseIsIdempotentAndMoveSafe) {
  IndexManager manager(MakeIndex(16, 32, 1));
  PinnedIndex pin = manager.Acquire();
  PinnedIndex moved = std::move(pin);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  moved.Release();  // second release is a no-op
  EXPECT_EQ(manager.pinned_readers(), 0u);
}

TEST(IndexManagerTest, PublishFaultInstallsNothing) {
  IndexManager manager(MakeIndex(16, 32, 1));
  FaultConfig config;
  config.seed = 5;
  config.io_error_probability = 1.0;
  config.max_injections = 1;
  ScopedFaultInjection arm(config);

  auto failed = manager.Publish(MakeIndex(16, 32, 2));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager.generation(), 1u) << "a failed publish must leave the "
                                         "old generation serving";
  EXPECT_EQ(manager.publishes(), 0u);
  EXPECT_EQ(manager.Acquire().generation(), 1u);

  // The injection budget is spent; the retry installs.
  auto retried = manager.Publish(MakeIndex(16, 32, 2));
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 2u);
}

TEST(IndexManagerTest, QuiescentSlotsRecycleWithoutBlocking) {
  // Far more generations than slots: with no pins outstanding, every
  // retired slot reclaims immediately and Publish never waits.
  IndexManager manager(MakeIndex(8, 8, 1));
  for (uint64_t i = 0; i < IndexManager::kNumSlots * 3; ++i) {
    ASSERT_TRUE(manager.Publish(MakeIndex(8, 8, i + 2)).ok());
    EXPECT_EQ(manager.retained_snapshots(), 1u);
  }
  EXPECT_EQ(manager.generation(), IndexManager::kNumSlots * 3 + 1);
}

TEST(IndexManagerTest, ReadersNeverBlockAcrossConcurrentPublishes) {
  // Readers acquire/release in a tight loop while a writer publishes 200
  // generations. Wait-freedom can't be asserted directly, but the
  // monotonicity contract can: each reader's observed generation never
  // decreases, and every pin is internally consistent.
  IndexManager manager(MakeIndex(32, 64, 1));
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> acquired{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        PinnedIndex pin = manager.Acquire();
        EXPECT_GE(pin.generation(), last);
        last = pin.generation();
        EXPECT_EQ(pin->num_records(), 32u);
        acquired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(manager.Publish(MakeIndex(32, 64, i + 2)).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(acquired.load(), 0u);
  EXPECT_EQ(manager.pinned_readers(), 0u);
  EXPECT_EQ(manager.retained_snapshots(), 1u)
      << "all retired generations must be reclaimed once readers drain";
}

// ---------------------------------------------------------------------------
// ResolutionService: queries pin, publishes swap, the cache keys on
// generation

TEST(ServicePublishTest, QueriesSeeTheNewGenerationAfterPublish) {
  // Generation 1 has no matches at all; generation 2 has plenty. The same
  // semantic query must answer differently across the publish — in
  // particular the gen-1 answer cached before the swap must not be served
  // afterwards (the cache-key bugfix this PR carries).
  auto empty = std::make_shared<const ResolutionIndex>(
      core::RankedResolution(), 32);
  auto service = std::make_shared<ResolutionService>(empty);

  Query query;
  query.record = 3;
  query.certainty = 0.0;

  auto before = service->QueryRecord(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->generation, 1u);
  EXPECT_TRUE(before->matches.empty());
  auto cached = service->QueryRecord(query);  // warm the gen-1 cache entry
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);

  auto published = service->PublishIndex(MakeIndex(32, 256, 7));
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, 2u);

  auto after = service->QueryRecord(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->generation, 2u);
  EXPECT_FALSE(after->from_cache)
      << "a cached gen-1 answer leaked into gen-2";
  EXPECT_FALSE(after->matches.empty());

  auto metrics = service->metrics();
  EXPECT_EQ(metrics.generation, 2u);
  EXPECT_EQ(metrics.publishes, 1u);
  EXPECT_EQ(metrics.pinned_readers, 0u);
}

TEST(ServicePublishTest, EntityClustersFollowTheGeneration) {
  // The per-threshold cluster memo must be invalidated on publish: an
  // entity query after the swap reflects the new match graph.
  auto empty = std::make_shared<const ResolutionIndex>(
      core::RankedResolution(), 16);
  auto service = std::make_shared<ResolutionService>(empty);

  Query query;
  query.record = 2;
  query.granularity = Granularity::kEntity;
  query.certainty = 0.0;

  auto before = service->QueryRecord(query);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->entity, std::vector<data::RecordIdx>{2});

  std::vector<core::RankedMatch> matches(1);
  matches[0].pair = data::RecordPair(2, 9);
  matches[0].confidence = 0.9;
  ASSERT_TRUE(service
                  ->PublishIndex(std::make_shared<const ResolutionIndex>(
                      core::RankedResolution(std::move(matches)), 16))
                  .ok());

  auto after = service->QueryRecord(query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->entity, (std::vector<data::RecordIdx>{2, 9}));
  EXPECT_EQ(after->generation, 2u);
}

TEST(ServicePublishTest, GrowingCorpusWidensValidation) {
  // Publishing a bigger index makes previously OUT_OF_RANGE records
  // queryable — the ingest path's visibility contract.
  auto service = std::make_shared<ResolutionService>(MakeIndex(8, 16, 3));
  Query query;
  query.record = 11;
  auto before = service->QueryRecord(query);
  ASSERT_FALSE(before.ok());
  EXPECT_EQ(before.status().code(), StatusCode::kOutOfRange);

  ASSERT_TRUE(service->PublishIndex(MakeIndex(12, 24, 4)).ok());
  auto after = service->QueryRecord(query);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------------
// LiveIndexBuilder: append -> resolve -> publish

data::Record MakeReport(uint64_t book_id, const std::string& first,
                        const std::string& last, const std::string& town) {
  data::Record r;
  r.book_id = book_id;
  r.source_id = static_cast<uint32_t>(book_id % 3);
  r.Add(data::AttributeId::kFirstName, first);
  r.Add(data::AttributeId::kLastName, last);
  r.Add(data::AttributeId::kBirthCity, town);
  return r;
}

// A tiny seed corpus with real content, so the incremental resolver has
// items to intern and candidates to score.
data::Dataset MakeSeedCorpus() {
  data::Dataset dataset;
  dataset.Add(MakeReport(1, "chaim", "levi", "vilna"));
  dataset.Add(MakeReport(2, "chaim", "levi", "vilna"));
  dataset.Add(MakeReport(3, "sara", "cohen", "lodz"));
  dataset.Add(MakeReport(4, "dvora", "katz", "warsaw"));
  return dataset;
}

struct LiveServing {
  std::shared_ptr<ResolutionService> service;
  std::shared_ptr<LiveIndexBuilder> builder;
};

LiveServing MakeLiveServing(IngestOptions options = {}) {
  data::Dataset seed = MakeSeedCorpus();
  auto resolver = std::make_unique<core::IncrementalResolver>(
      seed, core::RankedResolution(), ml::AdTree());
  auto index = std::make_shared<const ResolutionIndex>(
      core::RankedResolution(), seed.size());
  auto service = std::make_shared<ResolutionService>(index);
  auto builder = std::make_shared<LiveIndexBuilder>(
      service, std::move(resolver), options);
  return {std::move(service), std::move(builder)};
}

TEST(LiveIndexBuilderTest, AppendedRecordBecomesQueryable) {
  LiveServing live = MakeLiveServing();
  EXPECT_EQ(live.builder->base_records(), 4u);

  // A near-duplicate of records 1/2: the incremental resolver should match
  // it against them once published.
  auto idx = live.builder->Submit(MakeReport(5, "chaim", "levi", "vilna"));
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 4u);
  ASSERT_TRUE(live.builder->WaitForIdle().ok());

  auto stats = live.builder->stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_GE(stats.published, 1u);

  Query query;
  query.record = *idx;
  auto result = live.service->QueryRecord(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->generation, 2u);
  EXPECT_FALSE(result->matches.empty())
      << "the appended duplicate found no matches";
}

TEST(LiveIndexBuilderTest, IndicesFollowSubmissionOrder) {
  LiveServing live = MakeLiveServing();
  for (uint64_t i = 0; i < 8; ++i) {
    auto idx = live.builder->Submit(
        MakeReport(100 + i, "name" + std::to_string(i), "x", "y"));
    ASSERT_TRUE(idx.ok());
    EXPECT_EQ(*idx, 4u + i);
  }
  ASSERT_TRUE(live.builder->WaitForIdle().ok());
  EXPECT_EQ(live.service->PinIndex()->num_records(), 12u);
}

TEST(LiveIndexBuilderTest, ZeroDepthQueueShedsEverySubmit) {
  IngestOptions options;
  options.max_queue_depth = 0;
  LiveServing live = MakeLiveServing(options);
  auto shed = live.builder->Submit(MakeReport(9, "a", "b", "c"));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
}

TEST(LiveIndexBuilderTest, SubmitAfterStopIsUnavailable) {
  LiveServing live = MakeLiveServing();
  live.builder->Stop();
  auto refused = live.builder->Submit(MakeReport(9, "a", "b", "c"));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
}

TEST(LiveIndexBuilderTest, PublishFaultsDelayButNeverLoseRecords) {
  // Fail the first two publishes; the builder retries with its cumulative
  // snapshot, so every submitted record still lands, in order.
  LiveServing live = MakeLiveServing();
  FaultConfig config;
  config.seed = 11;
  config.io_error_probability = 1.0;
  config.max_injections = 2;
  ScopedFaultInjection arm(config);

  std::vector<data::RecordIdx> indices;
  for (uint64_t i = 0; i < 4; ++i) {
    auto idx = live.builder->Submit(
        MakeReport(200 + i, "rivka" + std::to_string(i), "gold", "krakow"));
    ASSERT_TRUE(idx.ok());
    indices.push_back(*idx);
  }
  ASSERT_TRUE(live.builder->WaitForIdle().ok());

  auto stats = live.builder->stats();
  EXPECT_EQ(stats.applied, 4u);
  EXPECT_EQ(stats.publish_failures, 2u);
  EXPECT_GE(stats.published, 1u);
  EXPECT_EQ(live.service->PinIndex()->num_records(), 8u)
      << "all four records must be in the served generation";
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(indices[i], 4u + i);
  }
}

TEST(LiveIndexBuilderTest, BatchedPublishesCoalesceGenerations) {
  IngestOptions options;
  options.publish_batch = 8;
  LiveServing live = MakeLiveServing(options);
  for (uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        live.builder->Submit(MakeReport(300 + i, "m" + std::to_string(i),
                                        "n", "o"))
            .ok());
  }
  ASSERT_TRUE(live.builder->WaitForIdle().ok());
  auto stats = live.builder->stats();
  EXPECT_EQ(stats.applied, 8u);
  // At least one publish happened and batching kept it well under
  // one-per-record.
  EXPECT_GE(stats.published, 1u);
  EXPECT_LE(stats.published, 8u);
  EXPECT_EQ(live.service->PinIndex()->num_records(), 12u);
}

}  // namespace
}  // namespace yver::serve
