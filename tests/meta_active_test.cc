#include <set>

#include <gtest/gtest.h>

#include "blocking/baselines/meta_blocking.h"
#include "blocking/baselines/standard_blocking.h"
#include "core/evaluation.h"
#include "ml/active_learning.h"
#include "synth/generator.h"
#include "util/rng.h"

namespace yver {
namespace {

using blocking::baselines::BaselineBlock;
using blocking::baselines::CleanComparisons;
using blocking::baselines::MetaBlockingOptions;
using blocking::baselines::PruningScheme;
using blocking::baselines::WeightScheme;

// ---------------------------------------------------------------------------
// Meta-blocking

TEST(MetaBlockingTest, WepKeepsHeavilyCoOccurringPairs) {
  // Records 0,1 share three blocks; 2,3 share one.
  std::vector<BaselineBlock> blocks = {
      {0, 1}, {0, 1}, {0, 1, 2}, {2, 3}};
  MetaBlockingOptions options;
  options.weights = WeightScheme::kCommonBlocks;
  options.pruning = PruningScheme::kWeightedEdge;
  auto pairs = CleanComparisons(blocks, 4, options);
  std::set<data::RecordPair> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count(data::RecordPair(0, 1)));
  EXPECT_FALSE(set.count(data::RecordPair(2, 3)));  // weight 1 <= mean
}

TEST(MetaBlockingTest, CnpKeepsTopKPerRecord) {
  // Star: record 0 co-blocked with 1..5, each once; k=2 keeps two edges.
  std::vector<BaselineBlock> blocks;
  for (data::RecordIdx r = 1; r <= 5; ++r) {
    blocks.push_back({0, r});
  }
  MetaBlockingOptions options;
  options.weights = WeightScheme::kCommonBlocks;
  options.pruning = PruningScheme::kCardinalityNode;
  options.node_top_k = 2;
  auto pairs = CleanComparisons(blocks, 6, options);
  // Each spoke record keeps its single edge (its own top-1), so all 5
  // survive via the spoke side; with k=2 nothing is below any node's cap
  // except via record 0, whose cap alone would keep 2.
  EXPECT_GE(pairs.size(), 2u);
  EXPECT_LE(pairs.size(), 5u);
}

TEST(MetaBlockingTest, EcbsDemotesPromiscuousRecords) {
  // Record 9 appears in many blocks (a stop-word-like record); ECBS
  // down-weights its edges relative to a pair of rare records.
  std::vector<BaselineBlock> blocks = {
      {0, 1},            // rare pair, one shared block
      {9, 2}, {9, 3}, {9, 4}, {9, 5}, {9, 6}, {9, 7}, {9, 8},
  };
  MetaBlockingOptions options;
  options.weights = WeightScheme::kEcbs;
  options.pruning = PruningScheme::kWeightedEdge;
  auto pairs = CleanComparisons(blocks, 10, options);
  std::set<data::RecordPair> set(pairs.begin(), pairs.end());
  EXPECT_TRUE(set.count(data::RecordPair(0, 1)));
}

TEST(MetaBlockingTest, CleaningImprovesPrecisionOnSynthetic) {
  synth::GeneratorConfig config;
  config.num_persons = 250;
  config.seed = 8;
  auto generated = synth::Generate(config);
  blocking::baselines::StandardBlocking stbl;
  auto blocks = stbl.BuildBlocks(generated.dataset);
  auto raw_pairs = blocking::baselines::PairsOfBlocks(blocks);
  auto cleaned = CleanComparisons(blocks, generated.dataset.size());
  auto q_raw = core::EvaluatePairs(generated.dataset, raw_pairs);
  auto q_cleaned = core::EvaluatePairs(generated.dataset, cleaned);
  EXPECT_LT(cleaned.size(), raw_pairs.size());
  EXPECT_GT(q_cleaned.Precision(), q_raw.Precision());
  EXPECT_GT(q_cleaned.Recall(), q_raw.Recall() * 0.5);
}

TEST(MetaBlockingTest, EmptyBlocksGiveNoPairs) {
  EXPECT_TRUE(CleanComparisons({}, 5).empty());
}

// ---------------------------------------------------------------------------
// Active learning

std::vector<ml::Instance> OracleInstances(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ml::Instance> out;
  for (size_t i = 0; i < n; ++i) {
    ml::Instance inst;
    double v = rng.UniformDouble();
    inst.features.values.assign(features::FeatureSchema::Get().size(),
                                features::MissingValue());
    inst.features.values[features::FeatureSchema::Get().IndexOf("LNdist")] =
        v;
    bool pos = v > 0.55;
    inst.tag = pos ? ml::ExpertTag::kYes : ml::ExpertTag::kNo;
    inst.label = pos ? +1 : -1;
    out.push_back(std::move(inst));
  }
  return out;
}

TEST(ActiveLearningTest, CurveIsTrackedAndBudgetRespected) {
  auto pool = OracleInstances(600, 3);
  auto holdout = OracleInstances(200, 4);
  ml::ActiveLearningOptions options;
  options.initial_labels = 40;
  options.batch_size = 40;
  options.max_labels = 200;
  auto result = ml::RunActiveLearning(pool, holdout, options);
  ASSERT_FALSE(result.learning_curve.empty());
  EXPECT_LE(result.learning_curve.back().first, 200u);
  for (size_t i = 1; i < result.learning_curve.size(); ++i) {
    EXPECT_GT(result.learning_curve[i].first,
              result.learning_curve[i - 1].first);
  }
  // Converges on the simple concept.
  EXPECT_GT(result.learning_curve.back().second, 0.95);
}

TEST(ActiveLearningTest, UncertaintyBeatsRandomOnHardConcept) {
  // A concept with a thin boundary region: uncertainty sampling focuses
  // labels there.
  auto pool = OracleInstances(800, 7);
  auto holdout = OracleInstances(300, 8);
  ml::ActiveLearningOptions uncertainty;
  uncertainty.initial_labels = 30;
  uncertainty.batch_size = 30;
  uncertainty.max_labels = 150;
  auto random = uncertainty;
  random.strategy = ml::QueryStrategy::kRandom;
  auto u = ml::RunActiveLearning(pool, holdout, uncertainty);
  auto r = ml::RunActiveLearning(pool, holdout, random);
  // Not strictly guaranteed per-seed, but with the margin concept the
  // uncertainty learner should be at least competitive.
  EXPECT_GE(u.learning_curve.back().second,
            r.learning_curve.back().second - 0.02);
}

TEST(ActiveLearningTest, MaybePairsAreNeverLabeled) {
  auto pool = OracleInstances(200, 11);
  for (size_t i = 0; i < pool.size(); i += 2) {
    pool[i].tag = ml::ExpertTag::kMaybe;
  }
  auto holdout = OracleInstances(100, 12);
  ml::ActiveLearningOptions options;
  options.initial_labels = 30;
  options.batch_size = 30;
  options.max_labels = 120;
  auto result = ml::RunActiveLearning(pool, holdout, options);
  // Budget counts only decided labels; the curve grows despite Maybe
  // skips.
  EXPECT_FALSE(result.learning_curve.empty());
  EXPECT_LE(result.learning_curve.back().first, 120u);
}

}  // namespace
}  // namespace yver
