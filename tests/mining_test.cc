#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/item_dictionary.h"
#include "mining/brute_force_miner.h"
#include "mining/fp_growth.h"
#include "mining/fp_tree.h"
#include "mining/maximal_filter.h"
#include "util/rng.h"

namespace yver::mining {
namespace {

using data::ItemBag;

std::set<std::vector<data::ItemId>> ItemsetsOf(
    const std::vector<FrequentItemset>& fis) {
  std::set<std::vector<data::ItemId>> out;
  for (const auto& fi : fis) out.insert(fi.items);
  return out;
}

// ---------------------------------------------------------------------------
// IsSubsetOf / FilterMaximal

TEST(SubsetTest, Basics) {
  EXPECT_TRUE(IsSubsetOf({}, {}));
  EXPECT_TRUE(IsSubsetOf({}, {1}));
  EXPECT_TRUE(IsSubsetOf({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubsetOf({1, 4}, {1, 2, 3}));
  EXPECT_FALSE(IsSubsetOf({1, 2, 3}, {1, 3}));
  EXPECT_TRUE(IsSubsetOf({2}, {2}));
}

TEST(FilterMaximalTest, RemovesSubsets) {
  std::vector<FrequentItemset> fis = {
      {{1}, 5}, {{1, 2}, 3}, {{2}, 4}, {{1, 2, 3}, 2}, {{4}, 2}};
  auto maximal = ItemsetsOf(FilterMaximal(fis));
  EXPECT_EQ(maximal.size(), 2u);
  EXPECT_TRUE(maximal.count({1, 2, 3}));
  EXPECT_TRUE(maximal.count({4}));
}

// ---------------------------------------------------------------------------
// FP-tree

TEST(FpTreeTest, SharedPrefixCompresses) {
  FpTree tree(3);
  tree.Insert({0, 1}, 1);
  tree.Insert({0, 1, 2}, 1);
  tree.Insert({0, 2}, 1);
  EXPECT_EQ(tree.RankSupport(0), 3u);
  EXPECT_EQ(tree.RankSupport(1), 2u);
  EXPECT_EQ(tree.RankSupport(2), 2u);
  // Root + nodes {0, 1, 2(under 1), 2(under 0)} = 5.
  EXPECT_EQ(tree.num_nodes(), 5u);
}

TEST(FpTreeTest, SinglePathDetection) {
  FpTree tree(3);
  tree.Insert({0, 1, 2}, 2);
  tree.Insert({0, 1}, 1);
  EXPECT_TRUE(tree.IsSinglePath());
  auto path = tree.SinglePath();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0].second, 3u);
  EXPECT_EQ(path[2].second, 2u);
}

TEST(FpTreeTest, BranchingIsNotSinglePath) {
  FpTree tree(3);
  tree.Insert({0, 1}, 1);
  tree.Insert({0, 2}, 1);
  EXPECT_FALSE(tree.IsSinglePath());
}

TEST(FpTreeTest, EmptyTreeIsSinglePath) {
  FpTree tree(2);
  EXPECT_TRUE(tree.IsSinglePath());
  EXPECT_TRUE(tree.SinglePath().empty());
}

// ---------------------------------------------------------------------------
// FP-Growth vs brute force (exhaustive equivalence on the paper's Table 2
// style data)

TEST(FpGrowthTest, PaperExample) {
  // Records of Table 2: I = {F_Yitzhak, L_Postel, G_0} has support 2 and is
  // maximal at minsup=2.
  // Items: 0=YB1927 1=P_Lubaczow ... encode compactly:
  // r0: {0,1,2,3,4,5}         (YB,P1,P2,P3,P4,F Avraham,L Kesler)
  // simplified to the essence below.
  std::vector<ItemBag> bags = {
      {0, 1, 2},        // F Avraham, L Kesler, P Poland
      {0, 2, 3, 4},     // F Avraham, L Apoteker, P Poland, G 0
      {0, 2, 4, 5, 6},  // F Yitzhak(5), L Postel(6), Poland, G0, +Avraham
      {2, 4, 5, 6},     // F Yitzhak, L Postel, Poland, G 0
  };
  MinerOptions opts;
  opts.minsup = 2;
  auto mfis = MineMaximalItemsets(bags, opts);
  auto sets = ItemsetsOf(mfis);
  // {2,4,5,6} (Yitzhak,Postel,Poland,G0) must be maximal with support 2.
  EXPECT_TRUE(sets.count({2, 4, 5, 6}));
  for (const auto& mfi : mfis) {
    EXPECT_EQ(CountSupport(bags, mfi.items), mfi.support);
    EXPECT_GE(mfi.support, 2u);
  }
}

TEST(FpGrowthTest, AllFrequentMatchesBruteForceSmall) {
  std::vector<ItemBag> bags = {
      {0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}};
  for (uint32_t minsup = 1; minsup <= 4; ++minsup) {
    MinerOptions opts;
    opts.minsup = minsup;
    auto fp = MineFrequentItemsets(bags, opts);
    auto bf = BruteForceFrequentItemsets(bags, minsup);
    EXPECT_EQ(ItemsetsOf(fp), ItemsetsOf(bf)) << "minsup=" << minsup;
    // Supports agree too.
    for (const auto& fi : fp) {
      EXPECT_EQ(CountSupport(bags, fi.items), fi.support);
    }
  }
}

TEST(FpGrowthTest, EmptyAndDegenerateInputs) {
  MinerOptions opts;
  opts.minsup = 2;
  EXPECT_TRUE(MineFrequentItemsets({}, opts).empty());
  EXPECT_TRUE(MineMaximalItemsets({}, opts).empty());
  EXPECT_TRUE(MineMaximalItemsets({{1, 2}}, opts).empty());  // 1 txn < minsup
}

TEST(FpGrowthTest, MinsupOneEmitsEverything) {
  std::vector<ItemBag> bags = {{0}, {1}};
  MinerOptions opts;
  opts.minsup = 1;
  auto mfis = MineMaximalItemsets(bags, opts);
  EXPECT_EQ(ItemsetsOf(mfis), (std::set<std::vector<data::ItemId>>{
                                  {0}, {1}}));
}

TEST(FpGrowthTest, MaxItemsetsCapStopsEarly) {
  std::vector<ItemBag> bags;
  for (int t = 0; t < 8; ++t) {
    ItemBag bag;
    for (data::ItemId i = 0; i < 10; ++i) bag.push_back(i);
    bags.push_back(bag);
  }
  MinerOptions opts;
  opts.minsup = 2;
  opts.max_itemsets = 3;
  auto fis = MineFrequentItemsets(bags, opts);
  EXPECT_LE(fis.size(), 3u);
}

// ---------------------------------------------------------------------------
// Closed itemsets

TEST(ClosedItemsetsTest, ClosedSupersetOfMaximal) {
  std::vector<ItemBag> bags = {
      {0, 1, 2}, {0, 1}, {1, 2, 3}, {0, 2, 3}, {1, 3}, {0, 1, 2}};
  MinerOptions opts;
  opts.minsup = 2;
  auto closed = ItemsetsOf(MineClosedItemsets(bags, opts));
  auto maximal = ItemsetsOf(MineMaximalItemsets(bags, opts));
  for (const auto& m : maximal) {
    EXPECT_TRUE(closed.count(m)) << "maximal itemset missing from closed";
  }
  EXPECT_GE(closed.size(), maximal.size());
}

TEST(ClosedItemsetsTest, ClosednessSemantics) {
  // {0} appears in 3 txns, {0,1} in 3 txns too -> {0} is NOT closed.
  std::vector<ItemBag> bags = {{0, 1}, {0, 1}, {0, 1, 2}};
  MinerOptions opts;
  opts.minsup = 2;
  auto closed = ItemsetsOf(MineClosedItemsets(bags, opts));
  EXPECT_FALSE(closed.count({0}));
  EXPECT_FALSE(closed.count({1}));
  EXPECT_TRUE(closed.count({0, 1}));
  // {0,1,2} has support 1 < minsup: not frequent.
  EXPECT_FALSE(closed.count({0, 1, 2}));
}

TEST(ClosedItemsetsTest, SupportsAreExact) {
  std::vector<ItemBag> bags = {
      {0, 1, 2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}};
  MinerOptions opts;
  opts.minsup = 2;
  for (const auto& fi : MineClosedItemsets(bags, opts)) {
    EXPECT_EQ(CountSupport(bags, fi.items), fi.support);
  }
}

TEST(ClosedItemsetsTest, BruteForceClosednessAgreement) {
  util::Rng rng(123);
  std::vector<ItemBag> bags;
  for (int t = 0; t < 18; ++t) {
    ItemBag bag;
    for (int i = 0; i < 5; ++i) {
      bag.push_back(static_cast<data::ItemId>(rng.UniformInt(0, 7)));
    }
    std::sort(bag.begin(), bag.end());
    bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
    bags.push_back(std::move(bag));
  }
  MinerOptions opts;
  opts.minsup = 2;
  auto closed = MineClosedItemsets(bags, opts);
  // Definition check: no frequent strict superset has equal support.
  auto all = BruteForceFrequentItemsets(bags, 2);
  for (const auto& c : closed) {
    for (const auto& fi : all) {
      if (fi.items.size() > c.items.size() &&
          IsSubsetOf(c.items, fi.items)) {
        EXPECT_LT(fi.support, c.support);
      }
    }
  }
  // Completeness: every frequent itemset's closure is present.
  auto closed_sets = ItemsetsOf(closed);
  for (const auto& fi : all) {
    bool has_closed_superset = false;
    for (const auto& c : closed) {
      if (c.support == fi.support && IsSubsetOf(fi.items, c.items)) {
        has_closed_superset = true;
        break;
      }
    }
    EXPECT_TRUE(has_closed_superset);
  }
}

// Property sweep: on random transaction sets the maximal miner agrees with
// brute force for every minsup.
struct RandomMiningCase {
  uint64_t seed;
  size_t num_transactions;
  size_t alphabet;
  size_t max_len;
};

class FpGrowthRandomTest : public ::testing::TestWithParam<RandomMiningCase> {
};

TEST_P(FpGrowthRandomTest, MaximalMatchesBruteForce) {
  const auto& param = GetParam();
  util::Rng rng(param.seed);
  std::vector<ItemBag> bags;
  for (size_t t = 0; t < param.num_transactions; ++t) {
    ItemBag bag;
    size_t len = 1 + static_cast<size_t>(rng.UniformInt(
                         0, static_cast<int64_t>(param.max_len) - 1));
    for (size_t i = 0; i < len; ++i) {
      bag.push_back(static_cast<data::ItemId>(
          rng.UniformInt(0, static_cast<int64_t>(param.alphabet) - 1)));
    }
    std::sort(bag.begin(), bag.end());
    bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
    bags.push_back(std::move(bag));
  }
  for (uint32_t minsup = 2; minsup <= 4; ++minsup) {
    MinerOptions opts;
    opts.minsup = minsup;
    auto fp = MineMaximalItemsets(bags, opts);
    auto bf = BruteForceMaximalItemsets(bags, minsup);
    EXPECT_EQ(ItemsetsOf(fp), ItemsetsOf(bf))
        << "seed=" << param.seed << " minsup=" << minsup;
    for (const auto& mfi : fp) {
      EXPECT_EQ(CountSupport(bags, mfi.items), mfi.support);
    }
    // Closed miner agrees with reference closed enumeration.
    auto closed = MineClosedItemsets(bags, opts);
    auto closed_ref =
        FilterClosed(BruteForceFrequentItemsets(bags, minsup));
    EXPECT_EQ(ItemsetsOf(closed), ItemsetsOf(closed_ref))
        << "closed seed=" << param.seed << " minsup=" << minsup;
    for (const auto& cfi : closed) {
      EXPECT_EQ(CountSupport(bags, cfi.items), cfi.support);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTransactionSets, FpGrowthRandomTest,
    ::testing::Values(RandomMiningCase{1, 12, 8, 5},
                      RandomMiningCase{2, 20, 10, 6},
                      RandomMiningCase{3, 30, 6, 4},
                      RandomMiningCase{4, 15, 12, 7},
                      RandomMiningCase{5, 25, 5, 5},
                      RandomMiningCase{6, 40, 15, 6},
                      RandomMiningCase{7, 10, 20, 8},
                      RandomMiningCase{8, 50, 8, 3}));

}  // namespace
}  // namespace yver::mining
