// Coverage for API corners not exercised by the module suites: streaming
// CSV record parsing, extended q-gram caps, family-resolution options,
// ADTree edge semantics, narrative consensus ties.

#include <gtest/gtest.h>

#include "core/family_resolution.h"
#include "core/narrative.h"
#include "ml/adtree.h"
#include "text/qgram.h"
#include "util/csv.h"

namespace yver {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

// ---------------------------------------------------------------------------
// Streaming CSV record API

TEST(CsvStreamingTest, ParseCsvRecordAdvancesPosition) {
  std::string doc = "a,b\nc,\"d,e\"\n";
  size_t pos = 0;
  auto first = util::ParseCsvRecord(doc, &pos);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], "a");
  EXPECT_EQ(pos, 4u);
  auto second = util::ParseCsvRecord(doc, &pos);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[1], "d,e");
  EXPECT_EQ(pos, doc.size());
  EXPECT_FALSE(util::ParseCsvRecord(doc, &pos).has_value());
}

// ---------------------------------------------------------------------------
// Extended q-grams cap

TEST(ExtendedQGramTest, LongValuesFallBackToWholeString) {
  // 20-char token has 18 trigrams > max_k=10: only the whole string key.
  auto keys = text::ExtractExtendedQGrams("abcdefghijklmnopqrst", 3, 0.8);
  ASSERT_EQ(keys.size(), 1u);
}

TEST(ExtendedQGramTest, ThresholdOneKeepsOnlyWholeString) {
  auto keys = text::ExtractExtendedQGrams("abcd", 2, 1.0);
  // min_len = ceil(1.0 * 3 grams) = 3 = all grams; the strict-subset
  // enumeration excludes the full set, so only the whole-string key.
  EXPECT_EQ(keys.size(), 1u);
}

// ---------------------------------------------------------------------------
// Family resolution options

Dataset TwoSiblingsApart() {
  Dataset ds;
  auto add = [&ds](const char* fn, const char* city) {
    Record r;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kFathersName, "Donato");
    r.Add(AttributeId::kMothersName, "Olga");
    r.Add(AttributeId::kPermCity, city);
    ds.Add(std::move(r));
  };
  add("Guido", "Torino");
  add("Massimo", "Milano");  // brother who moved away
  return ds;
}

TEST(FamilyOptionsTest, SharedPlaceRequirementSplitsMovers) {
  Dataset ds = TwoSiblingsApart();
  core::EntityClusters singletons(core::RankedResolution{}, ds.size(), 0.0);
  core::FamilyResolutionOptions strict;
  strict.require_shared_place = true;
  auto strict_families = core::ResolveFamilies(ds, singletons, strict);
  EXPECT_EQ(strict_families.size(), 2u);
  core::FamilyResolutionOptions loose;
  loose.require_shared_place = false;
  auto loose_families = core::ResolveFamilies(ds, singletons, loose);
  EXPECT_EQ(loose_families.size(), 1u);
}

TEST(FamilyOptionsTest, NameThresholdControlsVariantTolerance) {
  Dataset ds;
  auto add = [&ds](const char* fn, const char* father) {
    Record r;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, "Kesler");
    r.Add(AttributeId::kFathersName, father);
    r.Add(AttributeId::kMothersName, "Chaya");
    r.Add(AttributeId::kPermCity, "Lublin");
    ds.Add(std::move(r));
  };
  add("Mendel", "Hersh");
  add("Motel", "Hersch");  // father-name spelling variant
  core::EntityClusters singletons(core::RankedResolution{}, ds.size(), 0.0);
  core::FamilyResolutionOptions tolerant;
  tolerant.name_threshold = 0.85;
  EXPECT_EQ(core::ResolveFamilies(ds, singletons, tolerant).size(), 1u);
  core::FamilyResolutionOptions exacting;
  exacting.name_threshold = 0.999;
  EXPECT_EQ(core::ResolveFamilies(ds, singletons, exacting).size(), 2u);
}

// ---------------------------------------------------------------------------
// ADTree structural accessors

TEST(AdTreeStructureTest, PredictionsAndSplittersExposed) {
  ml::AdTree tree(0.1);
  EXPECT_EQ(tree.predictions().size(), 1u);
  EXPECT_EQ(tree.splitters().size(), 0u);
  ml::AdtCondition cond;
  cond.feature = 0;
  cond.is_nominal = true;
  cond.nominal_value = 1;
  int s = tree.AddSplitter(tree.root(), cond, 0.5, -0.5, 1);
  EXPECT_EQ(s, 0);
  EXPECT_EQ(tree.predictions().size(), 3u);
  EXPECT_EQ(tree.splitters()[0].true_prediction, 1);
  EXPECT_EQ(tree.splitters()[0].false_prediction, 2);
  EXPECT_EQ(tree.predictions()[0].child_splitters.size(), 1u);
}

TEST(AdTreeStructureTest, ConditionToString) {
  ml::AdtCondition numeric;
  numeric.feature = features::FeatureSchema::Get().IndexOf("B3dist");
  numeric.threshold = 1.5;
  EXPECT_EQ(numeric.ToString(), "B3dist < 1.500");
  ml::AdtCondition nominal;
  nominal.feature = features::FeatureSchema::Get().IndexOf("sameFN");
  nominal.is_nominal = true;
  nominal.nominal_value = 1;
  EXPECT_EQ(nominal.ToString(), "sameFN = partial");
}

// ---------------------------------------------------------------------------
// Narrative consensus ties

TEST(NarrativeTieTest, EqualSupportBreaksAlphabetically) {
  Dataset ds;
  for (const char* name : {"Guido", "Guida"}) {
    Record r;
    r.Add(AttributeId::kFirstName, name);
    ds.Add(std::move(r));
  }
  auto profile = core::BuildProfile(ds, {0, 1});
  EXPECT_EQ(profile.Consensus(AttributeId::kFirstName), "Guida");
}

}  // namespace
}  // namespace yver
