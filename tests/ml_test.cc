#include <cmath>

#include <gtest/gtest.h>

#include "ml/adtree.h"
#include "ml/adtree_trainer.h"
#include "ml/instances.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace yver::ml {
namespace {

using features::FeatureSchema;
using features::FeatureVector;

FeatureVector MakeVector(std::initializer_list<std::pair<const char*, double>>
                             values) {
  FeatureVector fv;
  fv.values.assign(FeatureSchema::Get().size(), features::MissingValue());
  for (const auto& [name, v] : values) {
    fv.values[FeatureSchema::Get().IndexOf(name)] = v;
  }
  return fv;
}

// ---------------------------------------------------------------------------
// AdTree scoring semantics

TEST(AdTreeTest, PriorOnlyTree) {
  AdTree tree(0.42);
  FeatureVector fv = MakeVector({});
  EXPECT_DOUBLE_EQ(tree.Score(fv), 0.42);
  EXPECT_TRUE(tree.Classify(fv));
}

TEST(AdTreeTest, NumericSplitterRouting) {
  AdTree tree(-0.289);
  AdtCondition cond;
  cond.feature = FeatureSchema::Get().IndexOf("B3dist");
  cond.is_nominal = false;
  cond.threshold = 1.5;
  tree.AddSplitter(tree.root(), cond, +1.142, -0.29, 1);
  EXPECT_NEAR(tree.Score(MakeVector({{"B3dist", 0.0}})), -0.289 + 1.142,
              1e-9);
  EXPECT_NEAR(tree.Score(MakeVector({{"B3dist", 16.0}})), -0.289 - 0.29,
              1e-9);
}

TEST(AdTreeTest, NominalSplitterRouting) {
  AdTree tree(0.0);
  AdtCondition cond;
  cond.feature = FeatureSchema::Get().IndexOf("sameFFN");
  cond.is_nominal = true;
  cond.nominal_value = 0;  // "no"
  tree.AddSplitter(tree.root(), cond, -1.314, +0.539, 1);
  EXPECT_DOUBLE_EQ(tree.Score(MakeVector({{"sameFFN", 0.0}})), -1.314);
  EXPECT_DOUBLE_EQ(tree.Score(MakeVector({{"sameFFN", 2.0}})), +0.539);
}

TEST(AdTreeTest, MissingFeatureSkipsSubtree) {
  // Reproduces the paper's §5.2 example: a pair with different father
  // names (sameFFN = no), father-name distance 0.2, and NO mother first
  // name scores -1.3 + -0.25 = -1.55.
  AdTree tree(0.0);
  AdtCondition same_ffn;
  same_ffn.feature = FeatureSchema::Get().IndexOf("sameFFN");
  same_ffn.is_nominal = true;
  same_ffn.nominal_value = 0;
  tree.AddSplitter(tree.root(), same_ffn, -1.3, +0.54, 1);
  // Under the "no" prediction: MFNdist splitter (missing in our instance)
  // and FFNdist splitter.
  AdtCondition mfn;
  mfn.feature = FeatureSchema::Get().IndexOf("MFNdist");
  mfn.is_nominal = false;
  mfn.threshold = 0.728;
  tree.AddSplitter(1, mfn, -0.72, +1.53, 2);  // prediction node 1 = "no"
  AdtCondition ffn;
  ffn.feature = FeatureSchema::Get().IndexOf("FFNdist");
  ffn.is_nominal = false;
  ffn.threshold = 0.47;
  tree.AddSplitter(1, ffn, -0.25, -0.86, 3);
  auto fv = MakeVector({{"sameFFN", 0.0}, {"FFNdist", 0.2}});
  EXPECT_NEAR(tree.Score(fv), -1.3 - 0.25, 1e-9);
  EXPECT_FALSE(tree.Classify(fv));
}

TEST(AdTreeTest, MultipleChildrenUnderOnePredictionSum) {
  // The "general alternating tree" semantics (Fig. 6): all reachable
  // splitter children contribute.
  AdTree tree(0.5);
  AdtCondition c1;
  c1.feature = FeatureSchema::Get().IndexOf("B3dist");
  c1.is_nominal = false;
  c1.threshold = 4.5;
  tree.AddSplitter(tree.root(), c1, 0.3, -0.7, 1);
  AdtCondition c2;
  c2.feature = FeatureSchema::Get().IndexOf("LNdist");
  c2.is_nominal = false;
  c2.threshold = 1.0;
  tree.AddSplitter(tree.root(), c2, -0.2, 0.1, 2);
  auto fv = MakeVector({{"B3dist", 3.9}, {"LNdist", 0.9}});
  EXPECT_NEAR(tree.Score(fv), 0.5 + 0.3 - 0.2, 1e-9);
}

TEST(AdTreeTest, ToStringHasPaperLayout) {
  AdTree tree(-0.289);
  AdtCondition cond;
  cond.feature = FeatureSchema::Get().IndexOf("sameFFN");
  cond.is_nominal = true;
  cond.nominal_value = 0;
  tree.AddSplitter(tree.root(), cond, -1.314, 0.539, 1);
  std::string s = tree.ToString();
  EXPECT_NE(s.find(": -0.289"), std::string::npos);
  EXPECT_NE(s.find("(1)sameFFN = no: -1.314"), std::string::npos);
  EXPECT_NE(s.find("(1)sameFFN != no: 0.539"), std::string::npos);
}

TEST(AdTreeTest, UsedFeaturesListsSplitterFeatures) {
  AdTree tree(0.0);
  AdtCondition cond;
  cond.feature = 5;
  tree.AddSplitter(tree.root(), cond, 1, -1, 1);
  auto used = tree.UsedFeatures();
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], 5u);
}

// ---------------------------------------------------------------------------
// Trainer

std::vector<Instance> SeparableInstances(size_t n, util::Rng& rng,
                                         double flip = 0.0) {
  // Positive iff LNdist > 0.6; add optional label noise.
  std::vector<Instance> out;
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    double v = rng.UniformDouble();
    inst.features = MakeVector({{"LNdist", v},
                                {"B3dist", rng.UniformDouble() * 20}});
    inst.label = v > 0.6 ? +1 : -1;
    if (rng.Bernoulli(flip)) inst.label = -inst.label;
    inst.tag = inst.label > 0 ? ExpertTag::kYes : ExpertTag::kNo;
    out.push_back(std::move(inst));
  }
  return out;
}

TEST(AdTreeTrainerTest, LearnsSeparableConcept) {
  util::Rng rng(5);
  auto train = SeparableInstances(400, rng);
  auto test = SeparableInstances(200, rng);
  AdTreeTrainerOptions options;
  options.num_rounds = 5;
  AdTree tree = TrainAdTree(train, options);
  auto confusion = EvaluateBinary(tree, test);
  EXPECT_GT(confusion.Accuracy(), 0.97);
}

TEST(AdTreeTrainerTest, RobustToLabelNoise) {
  util::Rng rng(6);
  auto train = SeparableInstances(400, rng, /*flip=*/0.1);
  auto test = SeparableInstances(200, rng);
  AdTreeTrainerOptions options;
  AdTree tree = TrainAdTree(train, options);
  EXPECT_GT(EvaluateBinary(tree, test).Accuracy(), 0.9);
}

TEST(AdTreeTrainerTest, HandlesMissingFeatureTraining) {
  // Half the instances miss the discriminative feature; a secondary
  // feature carries them.
  util::Rng rng(7);
  std::vector<Instance> train;
  for (int i = 0; i < 400; ++i) {
    Instance inst;
    bool positive = rng.Bernoulli(0.5);
    if (i % 2 == 0) {
      inst.features = MakeVector({{"LNdist", positive ? 0.9 : 0.1}});
    } else {
      inst.features = MakeVector({{"FNdist", positive ? 0.95 : 0.2}});
    }
    inst.label = positive ? +1 : -1;
    train.push_back(std::move(inst));
  }
  AdTree tree = TrainAdTree(train, {});
  EXPECT_GT(EvaluateBinary(tree, train).Accuracy(), 0.95);
}

TEST(AdTreeTrainerTest, NumRoundsBoundsSplitters) {
  util::Rng rng(8);
  auto train = SeparableInstances(100, rng);
  AdTreeTrainerOptions options;
  options.num_rounds = 3;
  AdTree tree = TrainAdTree(train, options);
  EXPECT_LE(tree.num_splitters(), 3u);
}

TEST(AdTreeTrainerTest, ScoresRankPositivesAboveNegatives) {
  util::Rng rng(9);
  auto train = SeparableInstances(300, rng);
  AdTree tree = TrainAdTree(train, {});
  double clear_pos = tree.Score(MakeVector({{"LNdist", 0.99}}));
  double clear_neg = tree.Score(MakeVector({{"LNdist", 0.01}}));
  EXPECT_GT(clear_pos, clear_neg);
  EXPECT_GT(clear_pos, 0.0);
  EXPECT_LT(clear_neg, 0.0);
}

// ---------------------------------------------------------------------------
// Instances / policies / metrics

TEST(InstancesTest, MaybePolicySemantics) {
  std::vector<Instance> instances(5);
  instances[0].tag = ExpertTag::kYes;
  instances[1].tag = ExpertTag::kProbablyYes;
  instances[2].tag = ExpertTag::kMaybe;
  instances[3].tag = ExpertTag::kProbablyNo;
  instances[4].tag = ExpertTag::kNo;
  auto as_no = ApplyMaybePolicy(instances, MaybePolicy::kAsNo);
  ASSERT_EQ(as_no.size(), 5u);
  EXPECT_EQ(as_no[0].label, +1);
  EXPECT_EQ(as_no[1].label, +1);
  EXPECT_EQ(as_no[2].label, -1);
  EXPECT_EQ(as_no[4].label, -1);
  auto omitted = ApplyMaybePolicy(instances, MaybePolicy::kOmit);
  EXPECT_EQ(omitted.size(), 4u);
}

TEST(InstancesTest, SplitIsStratifiedAndComplete) {
  util::Rng rng(11);
  std::vector<Instance> instances;
  for (int i = 0; i < 100; ++i) {
    Instance inst;
    inst.label = i < 30 ? +1 : -1;
    instances.push_back(inst);
  }
  auto split = SplitTrainTest(instances, 0.7, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), 100u);
  size_t train_pos = 0;
  for (const auto& inst : split.train) train_pos += inst.label > 0;
  EXPECT_NEAR(static_cast<double>(train_pos) / split.train.size(), 0.3,
              0.05);
}

TEST(InstancesTest, KFoldsPartitionTestSets) {
  util::Rng rng(13);
  std::vector<Instance> instances(50);
  for (size_t i = 0; i < 50; ++i) instances[i].label = i % 3 ? -1 : +1;
  auto folds = KFolds(instances, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  size_t total_test = 0;
  for (const auto& fold : folds) {
    total_test += fold.test.size();
    EXPECT_EQ(fold.train.size() + fold.test.size(), 50u);
  }
  EXPECT_EQ(total_test, 50u);
}

TEST(MetricsTest, ConfusionArithmetic) {
  Confusion c;
  c.true_pos = 40;
  c.false_pos = 10;
  c.true_neg = 45;
  c.false_neg = 5;
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.85);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.Recall(), 40.0 / 45.0);
  EXPECT_NEAR(c.F1(), 2 * 0.8 * (40.0 / 45.0) / (0.8 + 40.0 / 45.0), 1e-9);
}

TEST(MetricsTest, EmptyConfusionIsZero) {
  Confusion c;
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

TEST(ThreeClassTest, PredictsMaybeWhenDetectorFires) {
  util::Rng rng(17);
  std::vector<Instance> train;
  // Yes: LNdist high; No: low; Maybe: mid with few features.
  for (int i = 0; i < 300; ++i) {
    Instance inst;
    int cls = i % 3;
    if (cls == 0) {
      inst.tag = ExpertTag::kYes;
      inst.features = MakeVector({{"LNdist", 0.9 + 0.1 * rng.UniformDouble()},
                                  {"bagJaccard", 0.8}});
    } else if (cls == 1) {
      inst.tag = ExpertTag::kNo;
      inst.features = MakeVector({{"LNdist", 0.2 * rng.UniformDouble()},
                                  {"bagJaccard", 0.1}});
    } else {
      inst.tag = ExpertTag::kMaybe;
      inst.features = MakeVector({{"bagJaccard", 0.45}});
    }
    train.push_back(std::move(inst));
  }
  auto model = TrainThreeClass(train, {});
  EXPECT_EQ(model.Predict(MakeVector({{"LNdist", 0.95},
                                      {"bagJaccard", 0.8}})),
            ExpertTag::kYes);
  EXPECT_EQ(model.Predict(MakeVector({{"LNdist", 0.05},
                                      {"bagJaccard", 0.1}})),
            ExpertTag::kNo);
  EXPECT_EQ(model.Predict(MakeVector({{"bagJaccard", 0.45}})),
            ExpertTag::kMaybe);
}

TEST(TagTest, Names) {
  EXPECT_STREQ(ExpertTagName(ExpertTag::kYes), "Yes");
  EXPECT_STREQ(ExpertTagName(ExpertTag::kMaybe), "Maybe");
  EXPECT_STREQ(ExpertTagName(ExpertTag::kProbablyNo), "Probably No");
}

}  // namespace
}  // namespace yver::ml
