// Integration tests of the TCP front end (DESIGN.md §12): the wire
// answers must be byte-equal to the in-process API at every server thread
// count, responses must come back in request order under pipelining,
// malformed bytes must produce typed error frames (never a crash), a
// graceful shutdown must drain every accepted query, a recorded capture
// must replay to an identical response hash, and injected socket faults
// must only ever fragment or fail I/O — never corrupt an answer.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/ranked_resolution.h"
#include "data/dataset.h"
#include "data/record.h"
#include "ml/adtree.h"
#include "serve/ingest.h"
#include "serve/net/client.h"
#include "serve/net/loadgen.h"
#include "serve/net/replay.h"
#include "serve/net/server.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "serve/wire.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::StatusCode;

constexpr size_t kNumRecords = 200;
constexpr size_t kNumMatches = 800;

core::RankedResolution MakeResolution(size_t num_records, size_t num_matches,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::set<data::RecordPair> seen;
  std::vector<core::RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    data::RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    core::RankedMatch m;
    m.pair = pair;
    m.confidence = rng.UniformInt(-2, 20) / 10.0;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

std::shared_ptr<const ResolutionIndex> MakeIndex() {
  return std::make_shared<const ResolutionIndex>(
      MakeResolution(kNumRecords, kNumMatches, /*seed=*/77), kNumRecords);
}

std::vector<Query> MakeWorkload(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Query> workload;
  workload.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Query query;
    query.record = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(kNumRecords) - 1));
    query.certainty = rng.UniformInt(-2, 20) / 10.0;
    query.k = static_cast<size_t>(rng.UniformInt(0, 8));
    query.granularity =
        rng.Bernoulli(0.3) ? Granularity::kEntity : Granularity::kMatches;
    workload.push_back(query);
  }
  return workload;
}

/// The reference bytes: what the uncached single-threaded in-process API
/// answers, pushed through the same codec.
std::vector<std::string> ReferenceBytes(
    const std::shared_ptr<const ResolutionIndex>& index,
    const std::vector<Query>& workload) {
  ServiceOptions options;
  options.num_threads = 1;
  options.cache_capacity = 0;
  ResolutionService reference(index, options);
  std::vector<std::string> expected;
  expected.reserve(workload.size());
  for (const Query& query : workload) {
    std::string bytes;
    wire::EncodeResult(reference.QueryRecord(query), &bytes);
    expected.push_back(std::move(bytes));
  }
  return expected;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Byte equality: the tentpole determinism contract

TEST(NetServerTest, WireAnswersAreByteEqualToInProcessAcrossThreadCounts) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(300, /*seed=*/5);
  auto expected = ReferenceBytes(index, workload);

  for (size_t threads : {1u, 2u, 8u}) {
    ServiceOptions service_options;
    service_options.num_threads = threads;
    auto service =
        std::make_shared<ResolutionService>(index, service_options);
    net::ServerOptions server_options;
    server_options.dispatch_threads = threads;
    net::Server server(service, server_options);
    ASSERT_TRUE(server.Start().ok());

    auto client = net::Client::Connect(server.port());
    ASSERT_TRUE(client.ok());
    for (size_t i = 0; i < workload.size(); ++i) {
      ASSERT_TRUE(client->SendQuery(workload[i]).ok());
      auto response = client->ReadFrameBytes();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_EQ(*response, expected[i])
          << "query " << i << " at " << threads << " threads";
    }
    server.Shutdown();
  }
}

TEST(NetServerTest, PipelinedResponsesComeBackInRequestOrder) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(500, /*seed=*/6);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions options;
  options.dispatch_threads = 4;
  options.max_batch = 16;  // force several dispatch rounds
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  // Fire the whole pipeline before reading anything.
  for (const Query& query : workload) {
    ASSERT_TRUE(client->SendQuery(query).ok());
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadFrameBytes();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, expected[i]) << "response " << i;
  }
  server.Shutdown();
}

TEST(NetServerTest, ConcurrentConnectionsEachGetOrderedByteEqualAnswers) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions options;
  options.dispatch_threads = 4;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr size_t kClients = 8;
  std::vector<std::thread> threads;
  // One atomic per client: vector<bool> packs bits, so concurrent writers
  // to neighboring indices would race on the shared word.
  std::array<std::atomic<bool>, kClients> passed{};
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto workload = MakeWorkload(100, /*seed=*/100 + c);
      auto expected = ReferenceBytes(index, workload);
      auto client = net::Client::Connect(server.port());
      if (!client.ok()) return;
      for (const Query& query : workload) {
        if (!client->SendQuery(query).ok()) return;
      }
      for (size_t i = 0; i < workload.size(); ++i) {
        auto response = client->ReadFrameBytes();
        if (!response.ok() || *response != expected[i]) return;
      }
      passed[c] = true;
    });
  }
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(passed[c]) << "client " << c;
  }
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Typed failures over the wire

TEST(NetServerTest, InvalidQueriesGetTypedErrorFramesAndConnectionLivesOn) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  Query nan_query;
  nan_query.certainty = std::numeric_limits<double>::quiet_NaN();
  auto result = client->Call(nan_query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  Query out_of_range;
  out_of_range.record = kNumRecords + 5;
  result = client->Call(out_of_range);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);

  // An already-expired wire deadline answers DEADLINE_EXCEEDED.
  result = client->Call(Query{}, /*deadline_ms=*/-1.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // The connection survived all of it.
  result = client->Call(Query{});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  server.Shutdown();
}

TEST(NetServerTest, MalformedQueryPayloadKeepsResponseOrder) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // good, bad-payload (valid frame, wrong size), good — pipelined. The
  // malformed one answers INVALID_ARGUMENT in position, not first or last.
  std::string stream;
  wire::EncodeQuery(Query{}, 0, &stream);
  wire::AppendFrame(wire::FrameType::kQuery, "abc", &stream);
  wire::EncodeQuery(Query{}, 0, &stream);
  ASSERT_TRUE(client->SendBytes(stream).ok());

  auto first = client->ReadResult();
  EXPECT_TRUE(first.ok());
  auto second = client->ReadResult();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  auto third = client->ReadResult();
  EXPECT_TRUE(third.ok());
  server.Shutdown();
}

TEST(NetServerTest, GarbageBytesGetOneErrorFrameThenEof) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->SendBytes("this is not a frame").ok());
  auto result = client->ReadResult();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  // The connection is poisoned: next read sees EOF.
  auto eof = client->ReadFrameBytes();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(server.stats().protocol_errors, 1u);
  server.Shutdown();
}

TEST(NetServerTest, InfoReportsCorpusIdentityAndMetrics) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client->Call(Query{}).ok());
  auto info = client->Info();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->num_records, kNumRecords);
  EXPECT_EQ(info->num_matches, kNumMatches);
  EXPECT_EQ(info->checksum, index->Checksum());
  EXPECT_GE(info->metrics.queries, 1u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Graceful shutdown

TEST(NetServerTest, ShutdownDrainsEveryReceivedQuery) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(200, /*seed=*/8);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions options;
  options.dispatch_threads = 2;
  options.max_batch = 8;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  for (const Query& query : workload) {
    ASSERT_TRUE(client->SendQuery(query).ok());
  }
  // Wait until the server has parsed every frame (the wire is async), so
  // the drain contract — not a read race — is what's under test.
  while (server.stats().frames_received < workload.size()) {
    std::this_thread::yield();
  }
  server.Shutdown();

  // Every received query was answered before the close, in order.
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadFrameBytes();
    ASSERT_TRUE(response.ok()) << "response " << i << ": "
                               << response.status().ToString();
    EXPECT_EQ(*response, expected[i]) << "response " << i;
  }
  auto eof = client->ReadFrameBytes();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);
}

TEST(NetServerTest, ClientEofGetsAllAnswersThenClose) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(50, /*seed=*/9);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  for (const Query& query : workload) {
    ASSERT_TRUE(client->SendQuery(query).ok());
  }
  ASSERT_TRUE(client->FinishSending().ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadFrameBytes();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(*response, expected[i]);
  }
  auto eof = client->ReadFrameBytes();
  ASSERT_FALSE(eof.ok());
  server.Shutdown();
}

TEST(NetServerTest, HalfCloseWhileBatchesAreInFlightDeliversEveryAnswer) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(120, /*seed=*/31);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions options;
  options.max_batch = 4;  // the burst spans many batches, so the
                          // half-close lands while work is in flight
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // The whole pipelined burst, then shutdown(SHUT_WR) before reading a
  // single response: the server observes EPOLLRDHUP/EOF while earlier
  // batches are still being dispatched, and frames that were buffered
  // but not yet decoded when the EOF arrived must still be answered.
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  client->set_read_timeout_ms(10000);
  for (const Query& query : workload) {
    ASSERT_TRUE(client->SendQuery(query).ok());
  }
  ASSERT_TRUE(client->FinishSending().ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadFrameBytes();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, expected[i]);
  }
  auto eof = client->ReadFrameBytes();
  ASSERT_FALSE(eof.ok());

  // A clean half-close is not an offense: no defense counter fires, and
  // the connection is reaped once the last answer is flushed.
  net::ServerStats stats = server.stats();
  for (int i = 0; i < 500 && stats.open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = server.stats();
  }
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.disconnects_idle, 0u);
  EXPECT_EQ(stats.disconnects_slowloris, 0u);
  EXPECT_EQ(stats.disconnects_oversize, 0u);
  EXPECT_EQ(stats.disconnects_rate_limited, 0u);
  EXPECT_EQ(stats.disconnects_write_stall, 0u);
  server.Shutdown();
}

TEST(NetServerTest, AbruptCloseWithBatchesInFlightIsReapedWithoutHarm) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(60, /*seed=*/33);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions options;
  options.max_batch = 4;
  net::Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // Three connections each blast a pipelined burst and vanish without
  // reading a byte (full close): the loop sees EPOLLHUP/EPOLLRDHUP, a
  // read reset, or a write failure on answers it is still producing, and
  // must reap the connection — including any batch that completes after
  // the socket died — without crashing or wedging.
  std::string burst;
  for (const Query& query : workload) {
    std::string frame;
    wire::EncodeQuery(query, 0, &frame);
    burst.append(frame);
  }
  for (int c = 0; c < 3; ++c) {
    auto sock = util::Socket::ConnectLoopback(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock->WriteFull(burst.data(), burst.size(),
                                util::Deadline::AfterMillis(5000))
                    .ok());
    sock->Close();
  }

  // The reaped connections must not harm anyone else: a well-behaved
  // client connected afterwards still gets byte-equal ordered answers.
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());
  client->set_read_timeout_ms(10000);
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(client->SendQuery(workload[i]).ok());
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    auto response = client->ReadFrameBytes();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(*response, expected[i]);
  }

  // Every vanished connection is eventually reaped; only the live client
  // remains, and nothing was booked as a framing offense.
  net::ServerStats stats = server.stats();
  for (int i = 0; i < 500 && stats.open_connections > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stats = server.stats();
  }
  EXPECT_EQ(stats.open_connections, 1u);
  EXPECT_EQ(stats.connections_accepted, 4u);
  EXPECT_EQ(stats.connections_closed, 3u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Load generator: record/replay determinism

TEST(NetLoadGenTest, RecordThenReplayIsHashIdentical) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions server_options;
  server_options.dispatch_threads = 2;
  net::Server server(service, server_options);
  ASSERT_TRUE(server.Start().ok());

  std::string capture = TempPath("loadgen_capture.yvq");
  net::LoadGenOptions options;
  options.port = server.port();
  options.connections = 3;
  options.num_queries = 400;
  options.hot_set = 64;
  options.entity_fraction = 0.25;
  options.record_path = capture;
  auto recorded = net::RunLoadGen(options);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_EQ(recorded->queries_sent, 400u);
  EXPECT_EQ(recorded->ok, 400u);

  net::LoadGenOptions replay_options;
  replay_options.port = server.port();
  replay_options.connections = 3;
  replay_options.replay_path = capture;
  auto replay1 = net::RunLoadGen(replay_options);
  ASSERT_TRUE(replay1.ok()) << replay1.status().ToString();
  auto replay2 = net::RunLoadGen(replay_options);
  ASSERT_TRUE(replay2.ok());

  // The recorded run and both replays got byte-identical answers — cache
  // state and scheduling have changed in between, the bytes have not.
  EXPECT_EQ(replay1->response_hash, recorded->response_hash);
  EXPECT_EQ(replay2->response_hash, recorded->response_hash);
  EXPECT_EQ(replay1->queries_sent, 400u);

  // Server-side metrics travelled back over the wire.
  EXPECT_GE(replay2->server_metrics.queries, 1200u);
  server.Shutdown();
  std::remove(capture.c_str());
}

TEST(NetLoadGenTest, OpenLoopPacingAnswersEverything) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());

  net::LoadGenOptions options;
  options.port = server.port();
  options.connections = 2;
  options.num_queries = 200;
  options.qps = 20000;  // paced, but fast enough to finish quickly
  auto report = net::RunLoadGen(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->queries_sent, 200u);
  EXPECT_EQ(report->ok + report->errors, 200u);
  EXPECT_GT(report->qps_achieved, 0.0);
  EXPECT_GT(report->LatencyPercentileMs(0.5), 0.0);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Chaos at the socket: faults fragment or fail, never corrupt

// ---------------------------------------------------------------------------
// Live ingest over the wire (DESIGN.md §13)

data::Record MakeWireReport(uint64_t book_id, const std::string& first,
                            const std::string& last) {
  data::Record r;
  r.book_id = book_id;
  r.source_id = 1;
  r.Add(data::AttributeId::kFirstName, first);
  r.Add(data::AttributeId::kLastName, last);
  r.Add(data::AttributeId::kBirthCity, "vilna");
  return r;
}

// A live server with a tiny real corpus behind it, so appended
// near-duplicates actually match.
struct LiveServer {
  std::shared_ptr<ResolutionService> service;
  std::shared_ptr<LiveIndexBuilder> builder;
  std::unique_ptr<net::Server> server;

  explicit LiveServer(net::ServerOptions options = {}) {
    data::Dataset seed;
    seed.Add(MakeWireReport(1, "chaim", "levi"));
    seed.Add(MakeWireReport(2, "chaim", "levi"));
    seed.Add(MakeWireReport(3, "sara", "cohen"));
    auto index = std::make_shared<const ResolutionIndex>(
        core::RankedResolution(), seed.size());
    service = std::make_shared<ResolutionService>(index);
    auto resolver = std::make_unique<core::IncrementalResolver>(
        seed, core::RankedResolution(), ml::AdTree());
    builder = std::make_shared<LiveIndexBuilder>(service,
                                                 std::move(resolver));
    server = std::make_unique<net::Server>(service, options, builder);
  }
};

TEST(NetLiveIngestTest, AppendedRecordBecomesQueryableOverTheWire) {
  LiveServer live;
  ASSERT_TRUE(live.server->Start().ok());
  auto client = net::Client::Connect(live.server->port());
  ASSERT_TRUE(client.ok());

  auto ack = client->Append(MakeWireReport(4, "chaim", "levi"));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->record_idx, 3u);
  EXPECT_GE(ack->generation, 1u);

  // The ack is acceptance; visibility is the published generation. Wait
  // server-side, then confirm over the wire via Info.
  ASSERT_TRUE(live.builder->WaitForIdle().ok());
  auto info = client->Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_records, 4u);
  // The ack stamps the generation at acceptance time; a fast builder can
  // publish before the stamp is read, so equality is legitimate here.
  // Visibility is proven by num_records above, not by this comparison.
  EXPECT_GE(info->metrics.generation, ack->generation);
  EXPECT_GE(info->metrics.publishes, 1u);

  // The new record answers queries like any other — and matches the
  // near-duplicates it was seeded next to.
  Query query;
  query.record = static_cast<data::RecordIdx>(ack->record_idx);
  auto result = client->Call(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->generation, 2u);
  EXPECT_FALSE(result->matches.empty());
  live.server->Shutdown();
  EXPECT_EQ(live.server->stats().appends_accepted, 1u);
}

TEST(NetLiveIngestTest, AppendWithoutBuilderIsTypedUnavailable) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);  // no builder: live ingest disabled
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  auto ack = client->Append(MakeWireReport(9, "a", "b"));
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.status().code(), StatusCode::kUnavailable);

  // The connection lives on: a query still answers.
  EXPECT_TRUE(client->Call(Query{}).ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().appends_accepted, 0u);
}

TEST(NetLiveIngestTest, AppendsAndQueriesInterleaveInOrder) {
  // Pipelining contract extended to appends: one response per request
  // frame, in request order, across mixed query/append/info traffic.
  LiveServer live;
  ASSERT_TRUE(live.server->Start().ok());
  auto client = net::Client::Connect(live.server->port());
  ASSERT_TRUE(client.ok());

  Query query;
  query.record = 0;
  ASSERT_TRUE(client->SendQuery(query).ok());
  ASSERT_TRUE(client->SendAppend(MakeWireReport(4, "dvora", "katz")).ok());
  ASSERT_TRUE(client->SendQuery(query).ok());
  ASSERT_TRUE(client->SendAppend(MakeWireReport(5, "dvora", "katz")).ok());

  auto r1 = client->ReadResult();
  ASSERT_TRUE(r1.ok());
  auto a1 = client->ReadAppendAck();
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->record_idx, 3u);
  auto r2 = client->ReadResult();
  ASSERT_TRUE(r2.ok());
  auto a2 = client->ReadAppendAck();
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->record_idx, 4u);

  live.server->Shutdown();
  EXPECT_EQ(live.server->stats().appends_accepted, 2u);
}

TEST(NetLiveIngestTest, GenerationIsMonotonicPerConnection) {
  // While a client interleaves appends with queries, the generation its
  // answers report never moves backwards — the reader-side monotonicity
  // half of the swap contract, observed over the wire.
  LiveServer live;
  ASSERT_TRUE(live.server->Start().ok());
  auto client = net::Client::Connect(live.server->port());
  ASSERT_TRUE(client.ok());

  uint64_t last_generation = 0;
  Query query;
  query.record = 1;
  for (uint64_t i = 0; i < 16; ++i) {
    auto ack = client->Append(
        MakeWireReport(100 + i, "gen" + std::to_string(i), "x"));
    ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    auto result = client->Call(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result->generation, last_generation)
        << "generation moved backwards on one connection";
    last_generation = result->generation;
  }
  ASSERT_TRUE(live.builder->WaitForIdle().ok());
  auto info = client->Info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_records, 3u + 16u);
  // The Info snapshot pins the index to read the corpus fields, so the
  // gauge it reports includes its own pin — but never anyone else's on
  // an otherwise idle server.
  EXPECT_LE(info->metrics.pinned_readers, 1u)
      << "idle server still holds pins";
  live.server->Shutdown();
}

TEST(NetLiveIngestTest, NonDurableAcksSaySo) {
  LiveServer live;  // no WAL behind the builder
  ASSERT_TRUE(live.server->Start().ok());
  auto client = net::Client::Connect(live.server->port());
  ASSERT_TRUE(client.ok());
  auto ack = client->Append(MakeWireReport(4, "chaim", "levi"));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_FALSE(ack->durable);
  EXPECT_EQ(ack->wal_sequence, 0u);
  live.server->Shutdown();
}

TEST(NetLiveIngestTest, DurableAcksCarryWalSequenceAndSurviveRestart) {
  // An empty WAL directory for this run.
  std::string dir = TempPath("net_wal_dir");
  for (uint64_t s = 1; s <= 8; ++s) {
    char name[40];
    std::snprintf(name, sizeof(name), "/wal-%016llx.yvw",
                  static_cast<unsigned long long>(s));
    std::remove((dir + name).c_str());
  }
  std::vector<WalRecoveredRecord> recovered;
  auto wal = WriteAheadLog::Open(dir, WalOptions{}, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(recovered.empty());

  {
    data::Dataset seed;
    seed.Add(MakeWireReport(1, "chaim", "levi"));
    seed.Add(MakeWireReport(2, "chaim", "levi"));
    seed.Add(MakeWireReport(3, "sara", "cohen"));
    auto index = std::make_shared<const ResolutionIndex>(
        core::RankedResolution(), seed.size());
    auto service = std::make_shared<ResolutionService>(index);
    auto resolver = std::make_unique<core::IncrementalResolver>(
        seed, core::RankedResolution(), ml::AdTree());
    IngestOptions ingest;
    ingest.wal = wal->get();
    ingest.wal_base_records = seed.size();
    auto builder = std::make_shared<LiveIndexBuilder>(
        service, std::move(resolver), ingest);
    net::Server server(service, {}, builder);
    ASSERT_TRUE(server.Start().ok());
    auto client = net::Client::Connect(server.port());
    ASSERT_TRUE(client.ok());

    // A v3 ack from a WAL-backed server means durable: the record is
    // fsync'd under the reported sequence before the ack is sent.
    for (uint64_t i = 0; i < 3; ++i) {
      auto ack = client->Append(
          MakeWireReport(10 + i, "w" + std::to_string(i), "al"));
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
      EXPECT_EQ(ack->record_idx, 3 + i);
      EXPECT_TRUE(ack->durable);
      EXPECT_EQ(ack->wal_sequence, i + 1);
      EXPECT_LE(ack->wal_sequence, (*wal)->durable_sequence())
          << "acked before durable";
    }
    server.Shutdown();
    builder->Stop();
  }
  wal->reset();  // drop the fd; the bytes must carry everything

  auto reopened = WriteAheadLog::Open(dir, WalOptions{}, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), 3u);
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].sequence, i + 1);
    EXPECT_EQ(recovered[i].record.book_id, 10 + i);
  }
}

TEST(NetLiveIngestTest, MalformedAppendPayloadIsTypedAndOrdered) {
  LiveServer live;
  ASSERT_TRUE(live.server->Start().ok());
  auto client = net::Client::Connect(live.server->port());
  ASSERT_TRUE(client.ok());

  // Hand-build an append frame whose payload is garbage: the server must
  // answer INVALID_ARGUMENT in order and keep the connection alive.
  std::string bad;
  wire::AppendFrame(wire::FrameType::kAppendRequest, "garbage", &bad);
  Query query;
  query.record = 0;
  ASSERT_TRUE(client->SendQuery(query).ok());
  ASSERT_TRUE(client->SendBytes(bad).ok());
  ASSERT_TRUE(client->SendQuery(query).ok());

  ASSERT_TRUE(client->ReadResult().ok());
  auto err = client->ReadAppendAck();
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(client->ReadResult().ok()) << "connection died after a "
                                            "malformed append";
  live.server->Shutdown();
}

TEST(NetChaosTest, InjectedSocketFaultsNeverCorruptAnswers) {
  auto index = MakeIndex();
  auto workload = MakeWorkload(400, /*seed=*/12);
  auto expected = ReferenceBytes(index, workload);

  auto service = std::make_shared<ResolutionService>(index);
  net::ServerOptions server_options;
  server_options.dispatch_threads = 2;
  net::Server server(service, server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client = net::Client::Connect(server.port());
  ASSERT_TRUE(client.ok());

  // Latency spikes and short reads at net.socket.read / net.socket.write:
  // they fragment frames across partial reads and short writes, which must
  // be invisible in the response bytes. (No injected hard errors here —
  // those close connections by design and are covered below.)
  util::FaultConfig config;
  config.seed = 99;
  config.latency_probability = 0.02;
  config.latency_micros = 200;
  config.short_read_probability = 0.3;
  util::FaultInjector::Global().Arm(config);

  // The injector is global, so besides fragmenting the socket it also
  // fires inside the service (serve.service.compute): a query may
  // legitimately answer with a typed kError frame. The contract under
  // chaos: every kResult frame is byte-equal to the reference, every
  // kError frame carries an allowed injected code.
  size_t mismatches = 0;
  size_t ok_frames = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!client->SendQuery(workload[i]).ok()) break;
    auto response = client->ReadFrameBytes(util::Deadline::AfterMillis(5000));
    if (!response.ok()) break;
    if (static_cast<uint8_t>((*response)[3]) ==
        static_cast<uint8_t>(wire::FrameType::kError)) {
      wire::Frame frame;
      ASSERT_TRUE(wire::ExtractFrame(*response, &frame).ok());
      auto decoded = wire::DecodeResult(frame);
      ASSERT_FALSE(decoded.ok());
      StatusCode code = decoded.status().code();
      EXPECT_TRUE(code == StatusCode::kUnavailable ||
                  code == StatusCode::kDataLoss)
          << decoded.status().ToString();
      continue;
    }
    ++ok_frames;
    if (*response != expected[i]) ++mismatches;
  }
  auto& injector = util::FaultInjector::Global();
  uint64_t read_hits = injector.hits(util::FaultPoint::kSocketRead);
  uint64_t write_hits = injector.hits(util::FaultPoint::kSocketWrite);
  util::FaultInjector::Global().Disarm();
  server.Shutdown();

  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(ok_frames, 0u);
  // The chaos actually reached the socket layer on both sides.
  EXPECT_GT(read_hits, 0u);
  EXPECT_GT(write_hits, 0u);
}

TEST(NetChaosTest, InjectedIoErrorsCloseConnectionsNeverCrash) {
  auto index = MakeIndex();
  auto service = std::make_shared<ResolutionService>(index);
  net::Server server(service);
  ASSERT_TRUE(server.Start().ok());

  util::FaultConfig config;
  config.seed = 7;
  config.io_error_probability = 0.05;
  config.short_read_probability = 0.2;
  util::FaultInjector::Global().Arm(config);

  // Hammer the server with short pipelines over fresh connections; every
  // response is either a valid frame or a typed failure. Reads carry a
  // deadline: a client whose own send was cut short mid-frame would
  // otherwise wait forever for an answer to a query that never fully
  // arrived (the server, correctly, holds the partial frame).
  auto workload = MakeWorkload(20, /*seed=*/13);
  for (int round = 0; round < 30; ++round) {
    auto client = net::Client::Connect(server.port());
    if (!client.ok()) continue;
    size_t sent = 0;
    for (const Query& query : workload) {
      if (!client->SendQuery(query).ok()) break;
      ++sent;
    }
    for (size_t i = 0; i < sent; ++i) {
      auto response =
          client->ReadResult(util::Deadline::AfterMillis(2000));
      if (!response.ok()) {
        // Injected faults surface as UNAVAILABLE (error or peer close),
        // DATA_LOSS (torn frame / injected short read in the service),
        // or DEADLINE_EXCEEDED (this read's own bound, above).
        StatusCode code = response.status().code();
        EXPECT_TRUE(code == StatusCode::kUnavailable ||
                    code == StatusCode::kDataLoss ||
                    code == StatusCode::kDeadlineExceeded)
            << response.status().ToString();
        break;
      }
    }
  }
  util::FaultInjector::Global().Disarm();
  server.Shutdown();
  // The server survived and kept its books.
  EXPECT_GT(server.stats().connections_accepted, 0u);
}

}  // namespace
}  // namespace yver::serve
