#include <gtest/gtest.h>

#include "text/normalizer.h"

namespace yver::text {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

TEST(SkeletonKeyTest, VariantsCollide) {
  EXPECT_EQ(NameNormalizer::SkeletonKey("Moshe"),
            NameNormalizer::SkeletonKey("Mosze"));
  EXPECT_EQ(NameNormalizer::SkeletonKey("Kaminski"),
            NameNormalizer::SkeletonKey("Caminsky"));
  EXPECT_EQ(NameNormalizer::SkeletonKey("Weiss"),
            NameNormalizer::SkeletonKey("Veisz"));
  EXPECT_NE(NameNormalizer::SkeletonKey("Foa"),
            NameNormalizer::SkeletonKey("Kesler"));
}

TEST(SkeletonKeyTest, AllVowelNameKeepsInitial) {
  EXPECT_FALSE(NameNormalizer::SkeletonKey("Aia").empty());
}

Dataset VariantDataset() {
  Dataset ds;
  auto add = [&ds](const char* fn, const char* ln) {
    Record r;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    ds.Add(std::move(r));
  };
  // "Moshe" dominates its class; "Mosze" is the variant.
  add("Moshe", "Goldberg");
  add("Moshe", "Goldberg");
  add("Moshe", "Goldberg");
  add("Mosze", "Goldberg");
  add("Rivka", "Szwarc");
  add("Ryfka", "Szwarc");
  add("Rivka", "Shwarc");
  return ds;
}

TEST(NameNormalizerTest, CanonicalizesToMostFrequent) {
  auto normalizer = NameNormalizer::Build(VariantDataset());
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kFirstName, "Mosze"),
            "Moshe");
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kFirstName, "Moshe"),
            "Moshe");
  // Unknown values pass through untouched.
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kFirstName, "Archibald"),
            "Archibald");
}

TEST(NameNormalizerTest, DomainsAreSeparate) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kFirstName, "Israel");
  a.Add(AttributeId::kFirstName, "Israel");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kLastName, "Izrael");
  ds.Add(std::move(b));
  auto normalizer = NameNormalizer::Build(ds);
  // Surname domain never saw "Israel", so "Izrael" stays canonical of its
  // own (singleton) class.
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kLastName, "Izrael"),
            "Izrael");
}

TEST(NameNormalizerTest, FatherNameSharesFirstNameDomain) {
  Dataset ds;
  for (int i = 0; i < 3; ++i) {
    Record r;
    r.Add(AttributeId::kFirstName, "Avraham");
    ds.Add(std::move(r));
  }
  Record child;
  child.Add(AttributeId::kFathersName, "Awraham");
  ds.Add(std::move(child));
  auto normalizer = NameNormalizer::Build(ds);
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kFathersName, "Awraham"),
            "Avraham");
}

TEST(NameNormalizerTest, ApplyRewritesDatasetAndKeepsMetadata) {
  Dataset ds = VariantDataset();
  ds[0].book_id = 42;
  ds[0].entity_id = 7;
  auto normalizer = NameNormalizer::Build(ds);
  Dataset normalized = normalizer.Apply(ds);
  ASSERT_EQ(normalized.size(), ds.size());
  EXPECT_EQ(normalized[0].book_id, 42u);
  EXPECT_EQ(normalized[0].entity_id, 7);
  EXPECT_EQ(normalized[3].FirstValue(AttributeId::kFirstName), "Moshe");
  EXPECT_GT(normalizer.NumFoldedValues(), 0u);
  EXPECT_GT(normalizer.NumNonTrivialClasses(), 0u);
}

TEST(NameNormalizerTest, ThresholdControlsMerging) {
  Dataset ds;
  for (const char* name : {"Bella", "Bella", "Della"}) {
    Record r;
    r.Add(AttributeId::kFirstName, name);
    ds.Add(std::move(r));
  }
  // Bella/Della differ in the first letter: different skeleton buckets,
  // never merged regardless of threshold — clerical errors survive
  // preprocessing, exactly why the paper keeps the XnameDist features.
  auto normalizer = NameNormalizer::Build(ds);
  EXPECT_EQ(normalizer.Canonicalize(AttributeId::kFirstName, "Della"),
            "Della");
}

TEST(NameNormalizerTest, PlaceNormalizationIsOptional) {
  Dataset ds;
  for (const char* city : {"Warszawa", "Warszawa", "Warszava"}) {
    Record r;
    r.Add(AttributeId::kPermCity, city);
    ds.Add(std::move(r));
  }
  NameNormalizer::Options with_places;
  auto on = NameNormalizer::Build(ds, with_places);
  EXPECT_EQ(on.Canonicalize(AttributeId::kPermCity, "Warszava"),
            "Warszawa");
  NameNormalizer::Options no_places;
  no_places.normalize_places = false;
  auto off = NameNormalizer::Build(ds, no_places);
  EXPECT_EQ(off.Canonicalize(AttributeId::kPermCity, "Warszava"),
            "Warszava");
}

}  // namespace
}  // namespace yver::text
