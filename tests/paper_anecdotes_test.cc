// Acceptance tests pinning the paper's worked examples: the Guido Foa
// story of Table 1/Figure 2, the Capelluto family of Figures 13/14, and
// the numeric examples of §5.2. These are the behaviours a reader of the
// paper would check first.

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "features/feature_extractor.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace yver {
namespace {

using data::AttributeId;
using data::Dataset;
using data::Record;

Record GuidoRow1() {  // BookID 1016196 — the younger Guido (b. 1936).
  Record r;
  r.book_id = 1016196;
  r.source_id = 9001;
  r.entity_id = 900001;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foa");
  r.Add(AttributeId::kGender, "M");
  r.Add(AttributeId::kBirthDay, "2");
  r.Add(AttributeId::kBirthMonth, "8");
  r.Add(AttributeId::kBirthYear, "1936");
  r.Add(AttributeId::kBirthCity, "Torino");
  r.Add(AttributeId::kBirthCountry, "Italy");
  r.Add(AttributeId::kPermCity, "Torino");
  r.Add(AttributeId::kPermCountry, "Italy");
  r.Add(AttributeId::kMothersName, "Estela");
  r.Add(AttributeId::kFathersName, "Italo");
  return r;
}

Record GuidoRow2() {  // BookID 1059654 — the elder Guido (b. 1920).
  Record r;
  r.book_id = 1059654;
  r.source_id = 9002;
  r.entity_id = 900002;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foa");
  r.Add(AttributeId::kGender, "M");
  r.Add(AttributeId::kBirthDay, "18");
  r.Add(AttributeId::kBirthMonth, "11");
  r.Add(AttributeId::kBirthYear, "1920");
  r.Add(AttributeId::kBirthCity, "Torino");
  r.Add(AttributeId::kBirthCountry, "Italy");
  r.Add(AttributeId::kPermCity, "Torino");
  r.Add(AttributeId::kPermCountry, "Italy");
  r.Add(AttributeId::kDeathCity, "Auschwitz");
  r.Add(AttributeId::kSpouseName, "Helena");
  r.Add(AttributeId::kMothersName, "Olga");
  r.Add(AttributeId::kFathersName, "Donato");
  return r;
}

Record GuidoRow3() {  // BookID 1028769 — "Guido Foy", same elder Guido.
  Record r;
  r.book_id = 1028769;
  r.source_id = 9003;
  r.entity_id = 900002;
  r.Add(AttributeId::kFirstName, "Guido");
  r.Add(AttributeId::kLastName, "Foy");
  r.Add(AttributeId::kGender, "M");
  r.Add(AttributeId::kBirthDay, "18");
  r.Add(AttributeId::kBirthMonth, "11");
  r.Add(AttributeId::kBirthYear, "1920");
  r.Add(AttributeId::kBirthCity, "Turin");
  r.Add(AttributeId::kBirthCountry, "Italy");
  r.Add(AttributeId::kPermCity, "Canischio");
  r.Add(AttributeId::kPermCountry, "Italy");
  r.Add(AttributeId::kMothersName, "Olga");
  r.Add(AttributeId::kFathersName, "Donato");
  return r;
}

// The deployed-model scenario: train on an Italy-like corpus, then score
// the Table 1 pairs.
class GuidoFoaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::GeneratorConfig config = synth::ItalyConfig();
    config.num_persons = 900;
    generated_ = new synth::GeneratedData(synth::Generate(config));
    gazetteer_ = new synth::Gazetteer();
    pipeline_ = new core::UncertainErPipeline(
        generated_->dataset, gazetteer_->MakeGeoResolver());
    synth::TagOracle oracle(&generated_->dataset);
    result_ = new core::PipelineResult(pipeline_->Run(
        core::RecommendedConfig(),
        [&oracle](data::RecordIdx a, data::RecordIdx b) {
          return oracle.Tag(a, b);
        }));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete pipeline_;
    delete gazetteer_;
    delete generated_;
    result_ = nullptr;
    pipeline_ = nullptr;
    gazetteer_ = nullptr;
    generated_ = nullptr;
  }

  static synth::GeneratedData* generated_;
  static synth::Gazetteer* gazetteer_;
  static core::UncertainErPipeline* pipeline_;
  static core::PipelineResult* result_;
};

synth::GeneratedData* GuidoFoaTest::generated_ = nullptr;
synth::Gazetteer* GuidoFoaTest::gazetteer_ = nullptr;
core::UncertainErPipeline* GuidoFoaTest::pipeline_ = nullptr;
core::PipelineResult* GuidoFoaTest::result_ = nullptr;

TEST_F(GuidoFoaTest, ElderGuidoRowsMatchYoungerDoesNot) {
  core::IncrementalResolver resolver(generated_->dataset,
                                     result_->resolution, result_->model,
                                     gazetteer_->MakeGeoResolver());
  data::RecordIdx row1 = resolver.AddRecord(GuidoRow1());
  data::RecordIdx row2 = resolver.AddRecord(GuidoRow2());
  data::RecordIdx row3 = resolver.AddRecord(GuidoRow3());
  // Row 3 ("Guido Foy", Turin) links to row 2, despite the clerical
  // last-name variant and the different spelling of the city — the
  // paper's point that a naive name query would miss it.
  bool linked_to_row2 = false;
  bool linked_to_row1 = false;
  for (const auto& m : resolver.last_matches()) {
    data::RecordIdx other = m.pair.a == row3 ? m.pair.b : m.pair.a;
    if (other == row2) linked_to_row2 = true;
    if (other == row1) linked_to_row1 = true;
  }
  EXPECT_TRUE(linked_to_row2)
      << "BookID 1028769 must match BookID 1059654";
  EXPECT_FALSE(linked_to_row1)
      << "the 1936-born Guido is a different person";
}

TEST_F(GuidoFoaTest, MergedNarrativeTellsTheStory) {
  Dataset ds;
  ds.Add(GuidoRow2());
  ds.Add(GuidoRow3());
  auto profile = core::BuildProfile(ds, {0, 1});
  std::string text = core::RenderNarrative(profile);
  EXPECT_NE(text.find("Guido Foa"), std::string::npos);
  EXPECT_NE(text.find("18/11/1920"), std::string::npos);
  EXPECT_NE(text.find("Auschwitz"), std::string::npos);
  EXPECT_NE(text.find("2 report(s)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The Capelluto children (Figures 13/14): siblings sharing last name,
// parents and place are meaningful familial near-misses — person-level
// non-matches, family-level matches.

Dataset CapellutoChildren() {
  Dataset ds;
  auto add = [&ds](int64_t entity, const char* fn, const char* age_year) {
    Record r;
    r.entity_id = entity;
    r.family_id = 77;
    r.source_id = 555;  // all three submitted by the aunt (same source)
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, "Capelluto");
    r.Add(AttributeId::kFathersName, "Bohor");
    r.Add(AttributeId::kMothersName, "Zimbul");
    r.Add(AttributeId::kBirthYear, age_year);
    r.Add(AttributeId::kPermCity, "Rhodes");
    ds.Add(std::move(r));
  };
  add(1, "Elsa", "1933");
  add(2, "Giulia", "1931");
  add(3, "Alberto", "1939");
  return ds;
}

TEST(CapellutoTest, SiblingsAreFamilyLevelMatches) {
  Dataset ds = CapellutoChildren();
  EXPECT_FALSE(ds.IsGoldMatch(0, 1));
  EXPECT_TRUE(ds.IsGoldFamilyMatch(0, 1));
  // The expert oracle never calls them a confident Yes.
  synth::TagOracleConfig config;
  config.hedge = 0.0;
  config.slip = 0.0;
  synth::TagOracle oracle(&ds, config);
  for (auto [a, b] : {std::pair<data::RecordIdx, data::RecordIdx>{0, 1},
                      {0, 2},
                      {1, 2}}) {
    auto tag = oracle.Tag(a, b);
    EXPECT_TRUE(tag == ml::ExpertTag::kProbablyNo ||
                tag == ml::ExpertTag::kMaybe ||
                tag == ml::ExpertTag::kNo);
  }
}

TEST(CapellutoTest, SameSourceFilterDiscardsTheAuntsPairs) {
  Dataset ds = CapellutoChildren();
  core::UncertainErPipeline pipeline(ds);
  std::vector<blocking::CandidatePair> pairs = {
      {data::RecordPair(0, 1), 0.5, 2},
      {data::RecordPair(0, 2), 0.5, 2},
  };
  // "These three pages of testimonies share a source, the aunt of these
  // children, and thus they are discarded if the sameSrc feature is used."
  EXPECT_TRUE(pipeline.DiscardSameSource(pairs).empty());
}

// ---------------------------------------------------------------------------
// §5.1's feature example: "comparing a record with first names {John,
// Harris} with another record whose first name is John would result in
// partial" — already covered in features_test; here the paper's place
// example: Turin-Moncalieri birth places give PlaceXGeoDistance = 9 km.

TEST(PaperExamplesTest, TurinMoncalieriNineKilometres) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kBirthCity, "Torino");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kBirthCity, "Moncalieri");
  ds.Add(std::move(b));
  synth::Gazetteer gazetteer;
  auto encoded = data::EncodeDataset(ds, gazetteer.MakeGeoResolver());
  features::FeatureExtractor extractor(encoded);
  auto fv = extractor.Extract(0, 1);
  double km = fv.values[features::FeatureSchema::Get().IndexOf("BPGeoDist")];
  EXPECT_NEAR(km, 9.0, 3.0);
}

}  // namespace
}  // namespace yver
