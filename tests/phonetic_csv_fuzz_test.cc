#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/ranked_resolution.h"
#include "core/resolution_io.h"
#include "data/csv_io.h"
#include "serve/resolution_index.h"
#include "synth/generator.h"
#include "text/phonetic.h"
#include "util/csv.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace yver {
namespace {

// ---------------------------------------------------------------------------
// Soundex

TEST(SoundexTest, ClassicVectors) {
  EXPECT_EQ(text::Soundex("Robert"), "R163");
  EXPECT_EQ(text::Soundex("Rupert"), "R163");
  EXPECT_EQ(text::Soundex("Ashcraft"), "A261");
  EXPECT_EQ(text::Soundex("Ashcroft"), "A261");
  EXPECT_EQ(text::Soundex("Tymczak"), "T522");
  EXPECT_EQ(text::Soundex("Pfister"), "P236");
  EXPECT_EQ(text::Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(text::Soundex("o'brien"), text::Soundex("OBrien"));
  EXPECT_EQ(text::Soundex("FOA"), text::Soundex("foa"));
}

TEST(SoundexTest, DegenerateInputs) {
  EXPECT_EQ(text::Soundex(""), "");
  EXPECT_EQ(text::Soundex("123"), "");
  EXPECT_EQ(text::Soundex("A"), "A000");
}

TEST(SlavicPhoneticTest, TransliterationPairsCollide) {
  EXPECT_EQ(text::SlavicPhonetic("Szwarc"), text::SlavicPhonetic("Shvarts"));
  EXPECT_EQ(text::SlavicPhonetic("Weisz"), text::SlavicPhonetic("Veis"));
  EXPECT_EQ(text::SlavicPhonetic("Kowalski"),
            text::SlavicPhonetic("Cowalsci"));
  EXPECT_NE(text::SlavicPhonetic("Foa"), text::SlavicPhonetic("Kesler"));
}

// ---------------------------------------------------------------------------
// CSV round-trip fuzzing: random field content incl. quotes, commas,
// newlines must survive format -> parse.

TEST(CsvFuzzTest, RandomFieldsRoundTrip) {
  util::Rng rng(99);
  const std::string alphabet = "ab\"',\n\r ;|\\x";
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> row;
    size_t num_fields = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    for (size_t f = 0; f < num_fields; ++f) {
      std::string field;
      size_t len = static_cast<size_t>(rng.UniformInt(0, 12));
      for (size_t i = 0; i < len; ++i) {
        field.push_back(alphabet[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(alphabet.size()) - 1))]);
      }
      row.push_back(std::move(field));
    }
    // Fields ending in bare '\r' are normalized by the parser (CRLF
    // handling); skip those rare adversarial cases — real corpora never
    // carry bare CR inside fields unquoted.
    auto parsed = util::ParseCsv(util::FormatCsvRow(row) + "\n");
    ASSERT_EQ(parsed.size(), 1u) << "round " << round;
    ASSERT_EQ(parsed[0].size(), row.size()) << "round " << round;
    for (size_t f = 0; f < row.size(); ++f) {
      std::string expected = row[f];
      EXPECT_EQ(parsed[0][f], expected) << "round " << round;
    }
  }
}

TEST(CsvFuzzTest, DatasetRoundTripOnSyntheticCorpus) {
  synth::GeneratorConfig config;
  config.num_persons = 150;
  config.seed = 4;
  auto generated = synth::Generate(config);
  auto text = data::DatasetToCsv(generated.dataset);
  auto parsed = data::DatasetFromCsv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), generated.dataset.size());
  for (data::RecordIdx r = 0; r < parsed->size(); ++r) {
    const auto& a = generated.dataset[r];
    const auto& b = (*parsed)[r];
    EXPECT_EQ(a.book_id, b.book_id);
    EXPECT_EQ(a.source_id, b.source_id);
    EXPECT_EQ(a.entity_id, b.entity_id);
    EXPECT_EQ(a.family_id, b.family_id);
    EXPECT_EQ(a.NumValues(), b.NumValues());
    EXPECT_EQ(a.PresenceMask(), b.PresenceMask());
  }
}

TEST(CsvFuzzTest, TruncatedInputsRejectedNotCrashed) {
  synth::GeneratorConfig config;
  config.num_persons = 30;
  auto generated = synth::Generate(config);
  auto text = data::DatasetToCsv(generated.dataset);
  util::Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    size_t cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(text.size())));
    auto parsed = data::DatasetFromCsv(text.substr(0, cut));
    // Either parses a prefix or rejects — never crashes.
    if (parsed.has_value()) {
      EXPECT_LE(parsed->size(), generated.dataset.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Serving-artifact fuzzing: the matches CSV (core::resolution_io) and the
// binary index (serve::ResolutionIndex) are loaded from disk in
// production; truncated or bit-flipped artifacts must come back as a
// util::Status error (or a harmlessly short parse for the row-tolerant
// CSV), never crash or hang.

std::string ReadFileBytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good()) << "cannot write " << path;
  f << bytes;
}

struct ArtifactFixture {
  synth::GeneratedData generated;
  core::RankedResolution resolution;
};

ArtifactFixture MakeArtifactFixture() {
  ArtifactFixture fx;
  synth::GeneratorConfig config;
  config.num_persons = 40;
  config.seed = 21;
  fx.generated = synth::Generate(config);
  const size_t n = fx.generated.dataset.size();
  util::Rng rng(31);
  std::vector<core::RankedMatch> matches;
  for (int i = 0; i < 120; ++i) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    if (a == b) continue;
    core::RankedMatch m;
    m.pair = data::RecordPair(a, b);
    m.confidence = rng.UniformDouble();
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  fx.resolution = core::RankedResolution(std::move(matches));
  return fx;
}

TEST(ArtifactFuzzTest, MatchesCsvTruncatedAndBitFlippedNeverCrash) {
  ArtifactFixture fx = MakeArtifactFixture();
  ASSERT_FALSE(fx.resolution.empty());
  std::string path = ::testing::TempDir() + "fuzz_matches.csv";
  auto saved = core::SaveMatchesCsv(fx.generated.dataset, fx.resolution, path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  const std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty());

  std::string mutated_path = ::testing::TempDir() + "fuzz_matches_mut.csv";
  util::Rng rng(7);
  for (int round = 0; round < 60; ++round) {
    size_t cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size())));
    WriteFileBytes(mutated_path, bytes.substr(0, cut));
    auto loaded = core::LoadMatchesCsv(fx.generated.dataset, mutated_path);
    // The CSV loader is row-tolerant: it may parse a prefix, but a
    // truncated file can never yield more matches than the original.
    if (loaded.ok()) {
      EXPECT_LE(loaded->size(), fx.resolution.size()) << "cut " << cut;
    } else {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
  for (int round = 0; round < 60; ++round) {
    std::string flipped = bytes;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(flipped.size()) - 1));
    flipped[pos] = static_cast<char>(
        flipped[pos] ^ (1 << rng.UniformInt(0, 7)));
    WriteFileBytes(mutated_path, flipped);
    auto loaded = core::LoadMatchesCsv(fx.generated.dataset, mutated_path);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
  auto missing = core::LoadMatchesCsv(fx.generated.dataset,
                                      ::testing::TempDir() + "no_such.csv");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

TEST(ArtifactFuzzTest, ResolutionIndexTruncatedAndBitFlippedRejected) {
  ArtifactFixture fx = MakeArtifactFixture();
  serve::ResolutionIndex index(fx.resolution, fx.generated.dataset.size());
  std::string path = ::testing::TempDir() + "fuzz_index.yvx";
  auto saved = index.Save(path);
  ASSERT_TRUE(saved.ok()) << saved.ToString();
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 32u);

  // Sanity: the unmutated artifact round-trips and its checksum matches.
  auto clean = serve::ResolutionIndex::Load(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->Checksum(), index.Checksum());

  std::string mutated_path = ::testing::TempDir() + "fuzz_index_mut.yvx";
  util::Rng rng(13);
  // Every strict truncation must be rejected: the artifact ends in its
  // own checksum, so no proper prefix is a valid artifact.
  for (int round = 0; round < 80; ++round) {
    size_t cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    WriteFileBytes(mutated_path, bytes.substr(0, cut));
    auto loaded = serve::ResolutionIndex::Load(mutated_path);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << cut << " accepted";
    if (!loaded.ok()) {
      EXPECT_EQ(loaded.status().code(), util::StatusCode::kDataLoss)
          << loaded.status().ToString();
    }
  }
  // Every single-bit flip lands in the magic, the checksummed body, or
  // the stored digest — all three must fail validation.
  for (int round = 0; round < 80; ++round) {
    std::string flipped = bytes;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(flipped.size()) - 1));
    flipped[pos] = static_cast<char>(
        flipped[pos] ^ (1 << rng.UniformInt(0, 7)));
    WriteFileBytes(mutated_path, flipped);
    auto loaded = serve::ResolutionIndex::Load(mutated_path);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << pos << " accepted";
  }
  auto missing =
      serve::ResolutionIndex::Load(::testing::TempDir() + "no_such.yvx");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

// The corruption fuzzers again, but with the fault injector live on top:
// a mutated artifact AND injected I/O failures at once must still resolve
// to a typed status on every load, and any load that does report OK must
// be the exact artifact (real corruption is never masked by an injected
// fault, or vice versa).
TEST(ArtifactFuzzTest, MutationsUnderActiveFaultInjectionStayTyped) {
  ArtifactFixture fx = MakeArtifactFixture();
  serve::ResolutionIndex index(fx.resolution, fx.generated.dataset.size());
  std::string index_path = ::testing::TempDir() + "fuzz_faulted.yvx";
  ASSERT_TRUE(index.Save(index_path).ok());
  std::string csv_path = ::testing::TempDir() + "fuzz_faulted.csv";
  ASSERT_TRUE(
      core::SaveMatchesCsv(fx.generated.dataset, fx.resolution, csv_path)
          .ok());
  const std::string index_bytes = ReadFileBytes(index_path);
  const std::string csv_bytes = ReadFileBytes(csv_path);

  util::FaultConfig config;
  config.seed = 23;
  config.io_error_probability = 0.10;
  config.short_read_probability = 0.10;
  config.latency_probability = 0.02;
  config.latency_micros = 10;
  util::FaultInjector::Global().Arm(config);

  std::string mutated_index = ::testing::TempDir() + "fuzz_faulted_mut.yvx";
  std::string mutated_csv = ::testing::TempDir() + "fuzz_faulted_mut.csv";
  util::Rng rng(29);
  for (int round = 0; round < 60; ++round) {
    // Alternate truncations and bit flips across both artifact kinds.
    bool truncate = round % 2 == 0;
    {
      std::string mutated = index_bytes;
      if (truncate) {
        mutated.resize(static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1)));
      } else {
        size_t pos = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
        mutated[pos] =
            static_cast<char>(mutated[pos] ^ (1 << rng.UniformInt(0, 7)));
      }
      WriteFileBytes(mutated_index, mutated);
      auto loaded = serve::ResolutionIndex::Load(mutated_index);
      if (loaded.ok()) {
        EXPECT_EQ(loaded->Checksum(), index.Checksum());
      } else {
        auto code = loaded.status().code();
        EXPECT_TRUE(code == util::StatusCode::kDataLoss ||
                    code == util::StatusCode::kUnavailable)
            << loaded.status().ToString();
      }
    }
    {
      std::string mutated = csv_bytes;
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] =
          static_cast<char>(mutated[pos] ^ (1 << rng.UniformInt(0, 7)));
      WriteFileBytes(mutated_csv, mutated);
      auto loaded = core::LoadMatchesCsv(fx.generated.dataset, mutated_csv);
      if (loaded.ok()) {
        EXPECT_LE(loaded->size(), fx.resolution.size());
      } else {
        auto code = loaded.status().code();
        EXPECT_TRUE(code == util::StatusCode::kDataLoss ||
                    code == util::StatusCode::kUnavailable)
            << loaded.status().ToString();
      }
    }
  }
  util::FaultInjector::Global().Disarm();
  EXPECT_GT(util::FaultInjector::Global().injections(), 0u);

  // Once disarmed, the clean artifacts load clean again.
  auto clean = serve::ResolutionIndex::Load(index_path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->Checksum(), index.Checksum());
}

}  // namespace
}  // namespace yver
