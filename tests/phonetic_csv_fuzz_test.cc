#include <string>

#include <gtest/gtest.h>

#include "data/csv_io.h"
#include "synth/generator.h"
#include "text/phonetic.h"
#include "util/csv.h"
#include "util/rng.h"

namespace yver {
namespace {

// ---------------------------------------------------------------------------
// Soundex

TEST(SoundexTest, ClassicVectors) {
  EXPECT_EQ(text::Soundex("Robert"), "R163");
  EXPECT_EQ(text::Soundex("Rupert"), "R163");
  EXPECT_EQ(text::Soundex("Ashcraft"), "A261");
  EXPECT_EQ(text::Soundex("Ashcroft"), "A261");
  EXPECT_EQ(text::Soundex("Tymczak"), "T522");
  EXPECT_EQ(text::Soundex("Pfister"), "P236");
  EXPECT_EQ(text::Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(text::Soundex("o'brien"), text::Soundex("OBrien"));
  EXPECT_EQ(text::Soundex("FOA"), text::Soundex("foa"));
}

TEST(SoundexTest, DegenerateInputs) {
  EXPECT_EQ(text::Soundex(""), "");
  EXPECT_EQ(text::Soundex("123"), "");
  EXPECT_EQ(text::Soundex("A"), "A000");
}

TEST(SlavicPhoneticTest, TransliterationPairsCollide) {
  EXPECT_EQ(text::SlavicPhonetic("Szwarc"), text::SlavicPhonetic("Shvarts"));
  EXPECT_EQ(text::SlavicPhonetic("Weisz"), text::SlavicPhonetic("Veis"));
  EXPECT_EQ(text::SlavicPhonetic("Kowalski"),
            text::SlavicPhonetic("Cowalsci"));
  EXPECT_NE(text::SlavicPhonetic("Foa"), text::SlavicPhonetic("Kesler"));
}

// ---------------------------------------------------------------------------
// CSV round-trip fuzzing: random field content incl. quotes, commas,
// newlines must survive format -> parse.

TEST(CsvFuzzTest, RandomFieldsRoundTrip) {
  util::Rng rng(99);
  const std::string alphabet = "ab\"',\n\r ;|\\x";
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> row;
    size_t num_fields = 1 + static_cast<size_t>(rng.UniformInt(0, 5));
    for (size_t f = 0; f < num_fields; ++f) {
      std::string field;
      size_t len = static_cast<size_t>(rng.UniformInt(0, 12));
      for (size_t i = 0; i < len; ++i) {
        field.push_back(alphabet[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(alphabet.size()) - 1))]);
      }
      row.push_back(std::move(field));
    }
    // Fields ending in bare '\r' are normalized by the parser (CRLF
    // handling); skip those rare adversarial cases — real corpora never
    // carry bare CR inside fields unquoted.
    auto parsed = util::ParseCsv(util::FormatCsvRow(row) + "\n");
    ASSERT_EQ(parsed.size(), 1u) << "round " << round;
    ASSERT_EQ(parsed[0].size(), row.size()) << "round " << round;
    for (size_t f = 0; f < row.size(); ++f) {
      std::string expected = row[f];
      EXPECT_EQ(parsed[0][f], expected) << "round " << round;
    }
  }
}

TEST(CsvFuzzTest, DatasetRoundTripOnSyntheticCorpus) {
  synth::GeneratorConfig config;
  config.num_persons = 150;
  config.seed = 4;
  auto generated = synth::Generate(config);
  auto text = data::DatasetToCsv(generated.dataset);
  auto parsed = data::DatasetFromCsv(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), generated.dataset.size());
  for (data::RecordIdx r = 0; r < parsed->size(); ++r) {
    const auto& a = generated.dataset[r];
    const auto& b = (*parsed)[r];
    EXPECT_EQ(a.book_id, b.book_id);
    EXPECT_EQ(a.source_id, b.source_id);
    EXPECT_EQ(a.entity_id, b.entity_id);
    EXPECT_EQ(a.family_id, b.family_id);
    EXPECT_EQ(a.NumValues(), b.NumValues());
    EXPECT_EQ(a.PresenceMask(), b.PresenceMask());
  }
}

TEST(CsvFuzzTest, TruncatedInputsRejectedNotCrashed) {
  synth::GeneratorConfig config;
  config.num_persons = 30;
  auto generated = synth::Generate(config);
  auto text = data::DatasetToCsv(generated.dataset);
  util::Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    size_t cut = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(text.size())));
    auto parsed = data::DatasetFromCsv(text.substr(0, cut));
    // Either parses a prefix or rejects — never crashes.
    if (parsed.has_value()) {
      EXPECT_LE(parsed->size(), generated.dataset.size());
    }
  }
}

}  // namespace
}  // namespace yver
