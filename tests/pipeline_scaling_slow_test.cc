// Slow-label scaling test (ctest -L slow): the determinism contract on a
// corpus several times larger than the tier-1 matrix, where chunk
// boundaries, the chunked score-stage reduction, and the thread pool's
// work queue are exercised with thousands of blocks in flight. Kept out
// of tier-1 so scripts/check.sh stays fast.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"

namespace yver {
namespace {

TEST(PipelineScalingSlowTest, LargeCorpusIsThreadCountInvariant) {
  synth::GeneratorConfig config = synth::RandomSetConfig(0.08);  // ~8K records
  config.seed = 23;
  auto corpus = synth::Generate(config);
  ASSERT_GT(corpus.dataset.size(), 4000u);

  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(corpus.dataset,
                                     gazetteer.MakeGeoResolver());
  core::PipelineConfig pipeline_config = core::RecommendedConfig();

  std::vector<core::RankedMatch> baseline;
  for (size_t num_threads : {size_t{1}, size_t{4}}) {
    pipeline_config.num_threads = num_threads;
    synth::TagOracle oracle(&corpus.dataset);
    auto result = pipeline.Run(
        pipeline_config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
          return oracle.Tag(a, b);
        });
    if (baseline.empty()) {
      baseline = result.resolution.matches();
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(result.resolution.matches(), baseline)
          << "large-corpus resolution diverged at " << num_threads
          << " threads";
    }
  }
}

}  // namespace
}  // namespace yver
