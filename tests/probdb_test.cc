#include <cmath>

#include <gtest/gtest.h>

#include "probdb/calibration.h"
#include "probdb/uncertain_graph.h"

namespace yver::probdb {
namespace {

using data::RecordPair;

// ---------------------------------------------------------------------------
// Platt scaling

TEST(PlattScalerTest, MonotoneInScore) {
  PlattScaler scaler(2.0, -1.0);
  EXPECT_LT(scaler.Probability(-1.0), scaler.Probability(0.0));
  EXPECT_LT(scaler.Probability(0.0), scaler.Probability(2.0));
  EXPECT_GT(scaler.Probability(10.0), 0.99);
  EXPECT_LT(scaler.Probability(-10.0), 0.01);
}

TEST(PlattScalerTest, FitsSeparableScores) {
  std::vector<double> scores;
  std::vector<int> labels;
  util::Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    bool pos = rng.Bernoulli(0.5);
    scores.push_back(pos ? 1.5 + rng.Gaussian() * 0.5
                         : -1.5 + rng.Gaussian() * 0.5);
    labels.push_back(pos ? +1 : -1);
  }
  auto scaler = PlattScaler::Fit(scores, labels);
  EXPECT_GT(scaler.Probability(2.0), 0.9);
  EXPECT_LT(scaler.Probability(-2.0), 0.1);
  // Roughly calibrated at the boundary.
  EXPECT_NEAR(scaler.Probability(0.0), 0.5, 0.15);
}

TEST(PlattScalerTest, HandlesOneSidedData) {
  std::vector<double> scores = {1.0, 2.0, 3.0};
  std::vector<int> labels = {1, 1, 1};
  auto scaler = PlattScaler::Fit(scores, labels);
  EXPECT_GT(scaler.Probability(2.0), 0.5);
}

// ---------------------------------------------------------------------------
// Uncertain graph

UncertainMatchGraph CertainGraph() {
  // 5 records; certain edges 0-1, 1-2; impossible edge 3-4.
  std::vector<SameAsEdge> edges = {
      {RecordPair(0, 1), 1.0},
      {RecordPair(1, 2), 1.0},
      {RecordPair(3, 4), 0.0},
  };
  return UncertainMatchGraph(std::move(edges), 5);
}

TEST(UncertainGraphTest, CertainEdgesGiveDeterministicWorlds) {
  auto graph = CertainGraph();
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    auto world = graph.SampleWorld(rng);
    EXPECT_EQ(world.num_clusters, 3u);  // {0,1,2},{3},{4}
    EXPECT_EQ(world.cluster_of[0], world.cluster_of[2]);
    EXPECT_NE(world.cluster_of[3], world.cluster_of[4]);
  }
  auto map_world = graph.MapWorld();
  EXPECT_EQ(map_world.num_clusters, 3u);
}

TEST(UncertainGraphTest, ExpectedEntitiesInterpolates) {
  // One edge with p=0.5 between two records: E[#entities] = 1.5.
  std::vector<SameAsEdge> edges = {{RecordPair(0, 1), 0.5}};
  UncertainMatchGraph graph(std::move(edges), 2);
  util::Rng rng(11);
  auto [mean, stddev] = graph.ExpectedNumEntities(4000, rng);
  EXPECT_NEAR(mean, 1.5, 0.05);
  EXPECT_NEAR(stddev, 0.5, 0.05);
}

TEST(UncertainGraphTest, SameEntityThroughTransitivePath) {
  // 0-1 and 1-2 each with p=0.8: P(0~2) = p^2 = 0.64 (no direct edge).
  std::vector<SameAsEdge> edges = {{RecordPair(0, 1), 0.8},
                                   {RecordPair(1, 2), 0.8}};
  UncertainMatchGraph graph(std::move(edges), 3);
  util::Rng rng(13);
  double p = graph.SameEntityProbability(0, 2, 6000, rng);
  EXPECT_NEAR(p, 0.64, 0.03);
}

TEST(UncertainGraphTest, AlternativesRankedByLikelihood) {
  std::vector<SameAsEdge> edges = {{RecordPair(0, 1), 0.9},
                                   {RecordPair(0, 2), 0.1}};
  UncertainMatchGraph graph(std::move(edges), 3);
  util::Rng rng(17);
  auto alternatives = graph.AlternativesFor(0, 4000, rng);
  ASSERT_GE(alternatives.size(), 2u);
  // Most likely: {0,1}; likelihood ~ 0.9 * 0.9 = 0.81.
  EXPECT_EQ(alternatives[0].cluster,
            (std::vector<data::RecordIdx>{0, 1}));
  EXPECT_NEAR(alternatives[0].likelihood, 0.81, 0.04);
  double total = 0.0;
  for (const auto& alt : alternatives) {
    total += alt.likelihood;
    EXPECT_FALSE(alt.cluster.empty());
    // The anchor is always a member of its own alternative.
    EXPECT_TRUE(std::find(alt.cluster.begin(), alt.cluster.end(), 0u) !=
                alt.cluster.end());
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UncertainGraphTest, ExpectedEntitiesWherePredicate) {
  // Records 0,1 match with p=1; only record 0 satisfies the predicate.
  std::vector<SameAsEdge> edges = {{RecordPair(0, 1), 1.0}};
  UncertainMatchGraph graph(std::move(edges), 3);
  util::Rng rng(19);
  double expected = graph.ExpectedEntitiesWhere(
      [](data::RecordIdx r) { return r <= 1; }, 200, rng);
  EXPECT_NEAR(expected, 1.0, 1e-9);  // 0 and 1 are one entity
  double all = graph.ExpectedEntitiesWhere(
      [](data::RecordIdx) { return true; }, 200, rng);
  EXPECT_NEAR(all, 2.0, 1e-9);  // {0,1} and {2}
}

TEST(UncertainGraphTest, BuildsFromRankedResolution) {
  std::vector<core::RankedMatch> matches = {
      {RecordPair(0, 1), 3.0, 0.5},   // strong
      {RecordPair(1, 2), -2.0, 0.2},  // weak
  };
  core::RankedResolution resolution(std::move(matches));
  PlattScaler scaler(1.0, 0.0);
  UncertainMatchGraph graph(resolution, 3, scaler);
  ASSERT_EQ(graph.edges().size(), 2u);
  EXPECT_GT(graph.edges()[0].probability, 0.9);
  EXPECT_LT(graph.edges()[1].probability, 0.2);
  auto map_world = graph.MapWorld();
  EXPECT_EQ(map_world.num_clusters, 2u);
}

TEST(UncertainGraphTest, EmptyGraphSingletons) {
  UncertainMatchGraph graph(std::vector<SameAsEdge>{}, 4);
  util::Rng rng(23);
  auto world = graph.SampleWorld(rng);
  EXPECT_EQ(world.num_clusters, 4u);
  auto [mean, stddev] = graph.ExpectedNumEntities(10, rng);
  EXPECT_DOUBLE_EQ(mean, 4.0);
  EXPECT_DOUBLE_EQ(stddev, 0.0);
}

}  // namespace
}  // namespace yver::probdb
