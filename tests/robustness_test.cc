// Tests of the failure model (DESIGN.md §11): deadlines, retry/backoff,
// the deterministic fault injector, admission control / load shedding,
// and the skip-and-quarantine CSV loader.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/ranked_resolution.h"
#include "core/resolution_io.h"
#include "data/csv_io.h"
#include "serve/admission_controller.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/deadline.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver {
namespace {

using util::Deadline;
using util::FaultConfig;
using util::FaultInjector;
using util::FaultKind;
using util::FaultPoint;
using util::RetryPolicy;
using util::RetryStats;
using util::Status;
using util::StatusCode;

/// RAII arm/disarm around a test body: the injector is process-global, so
/// leaking an armed state would contaminate every later test.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultInjector::Global().Arm(config);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
};

// ---------------------------------------------------------------------------
// util::Deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.HasExpired());
  EXPECT_EQ(d.RemainingMillis(),
            std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).HasExpired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).HasExpired());
  EXPECT_TRUE(Deadline::ExpiredNow().HasExpired());
}

TEST(DeadlineTest, FutureDeadlineIsNotExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_FALSE(d.HasExpired());
  EXPECT_GT(d.RemainingMillis(), 0.0);
  EXPECT_LE(d.RemainingMillis(), 60000.0);
}

TEST(DeadlineTest, ExceededProducesTypedStatusWithLocation) {
  Status s = Deadline::ExpiredNow().Exceeded("unit test");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.ToString().find("unit test"), std::string::npos);
}

// ---------------------------------------------------------------------------
// util::RetryPolicy

TEST(RetryTest, DefaultRetryableCodes) {
  EXPECT_TRUE(util::DefaultRetryable(Status::Unavailable("x")));
  EXPECT_TRUE(util::DefaultRetryable(Status::DataLoss("x")));
  EXPECT_FALSE(util::DefaultRetryable(Status::NotFound("x")));
  EXPECT_FALSE(util::DefaultRetryable(Status::InvalidArgument("x")));
}

TEST(RetryTest, BackoffIsJitteredBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 10.0;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 25.0;
  util::Rng rng_a(7), rng_b(7);
  for (int attempt = 2; attempt <= 6; ++attempt) {
    double cap = std::min(policy.max_backoff_ms,
                          policy.initial_backoff_ms *
                              std::pow(policy.multiplier, attempt - 2));
    double a = util::NextBackoffMillis(policy, attempt, rng_a);
    double b = util::NextBackoffMillis(policy, attempt, rng_b);
    EXPECT_EQ(a, b) << "same seed must give the same schedule";
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, cap);
  }
}

TEST(RetryTest, SucceedsAfterTransientFailures) {
  int calls = 0;
  std::vector<double> slept;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [&slept](double ms) { slept.push_back(ms); };
  RetryStats stats;
  Status result = util::RetryWithPolicy(
      policy,
      [&calls] {
        return ++calls < 3 ? Status::Unavailable("transient")
                           : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_EQ(slept.size(), 2u);
}

TEST(RetryTest, ExhaustionReturnsLastUnderlyingError) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.sleep_fn = [](double) {};
  RetryStats stats;
  Status result = util::RetryWithPolicy(
      policy, [] { return Status::Unavailable("still down"); }, &stats);
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.attempts, 4);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kUnavailable);
}

TEST(RetryTest, NonRetryableFailsFast) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_fn = [](double) {};
  RetryStats stats;
  Status result = util::RetryWithPolicy(
      policy, [] { return Status::NotFound("gone"); }, &stats);
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.attempts, 1);
}

TEST(RetryTest, ExpiredDeadlineWinsBeforeFirstAttempt) {
  RetryPolicy policy;
  policy.sleep_fn = [](double) {};
  RetryStats stats;
  Status result = util::RetryWithPolicy(
      policy, [] { return Status::Ok(); }, &stats, Deadline::ExpiredNow());
  EXPECT_EQ(result.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.attempts, 0);
}

TEST(RetryTest, BackoffLongerThanDeadlineBecomesDeadlineExceeded) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 1e6;  // any jitter draw dwarfs the budget
  policy.max_backoff_ms = 1e6;
  policy.retryable = [](const Status&) { return true; };
  policy.sleep_fn = [](double) { FAIL() << "must not sleep past deadline"; };
  RetryStats stats;
  Status result = util::RetryWithPolicy(
      policy, [] { return Status::Unavailable("down"); }, &stats,
      Deadline::AfterMillis(50));
  EXPECT_EQ(result.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kDeadlineExceeded);
}

TEST(RetryTest, WorksWithStatusOrReturningCallables) {
  int calls = 0;
  RetryPolicy policy;
  policy.sleep_fn = [](double) {};
  util::StatusOr<int> result = util::RetryWithPolicy(
      policy, [&calls]() -> util::StatusOr<int> {
        if (++calls < 2) return Status::DataLoss("torn read");
        return 42;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// util::FaultInjector

TEST(FaultInjectorTest, DisarmedIsANoOp) {
  auto& injector = FaultInjector::Global();
  ASSERT_FALSE(injector.armed());
  EXPECT_EQ(injector.Evaluate(FaultPoint::kIndexLoadOpen), FaultKind::kNone);
  EXPECT_TRUE(injector.InjectIo(FaultPoint::kMatchesCsvLoad).ok());
}

TEST(FaultInjectorTest, EveryPointHasAStableName) {
  for (size_t p = 0; p < util::kNumFaultPoints; ++p) {
    const char* name = util::FaultPointName(static_cast<FaultPoint>(p));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameFaultSequence) {
  FaultConfig config;
  config.seed = 99;
  config.io_error_probability = 0.3;
  config.short_read_probability = 0.3;
  std::vector<FaultKind> first, second;
  {
    ScopedFaultInjection arm(config);
    for (int i = 0; i < 64; ++i) {
      first.push_back(
          FaultInjector::Global().Evaluate(FaultPoint::kIndexLoadRead));
    }
  }
  {
    ScopedFaultInjection arm(config);
    for (int i = 0; i < 64; ++i) {
      second.push_back(
          FaultInjector::Global().Evaluate(FaultPoint::kIndexLoadRead));
    }
  }
  EXPECT_EQ(first, second);
}

TEST(FaultInjectorTest, CertainIoErrorBecomesUnavailable) {
  FaultConfig config;
  config.io_error_probability = 1.0;
  ScopedFaultInjection arm(config);
  Status s = FaultInjector::Global().InjectIo(FaultPoint::kIndexLoadOpen);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.ToString().find("serve.index_load.open"), std::string::npos);
}

TEST(FaultInjectorTest, CertainShortReadBecomesDataLoss) {
  FaultConfig config;
  config.short_read_probability = 1.0;
  ScopedFaultInjection arm(config);
  Status s = FaultInjector::Global().InjectIo(FaultPoint::kMatchesCsvLoad);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(FaultInjectorTest, MaxInjectionsBoundsTotalFires) {
  FaultConfig config;
  config.io_error_probability = 1.0;
  config.max_injections = 3;
  ScopedFaultInjection arm(config);
  auto& injector = FaultInjector::Global();
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    fired += injector.Evaluate(FaultPoint::kCacheGet) != FaultKind::kNone;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.injections(), 3u);
  EXPECT_EQ(injector.injections(FaultPoint::kCacheGet), 3u);
  EXPECT_EQ(injector.hits(FaultPoint::kCacheGet), 10u);
}

TEST(FaultInjectorTest, FaultedIndexLoadIsRecoveredByRetry) {
  // Build and save a small artifact, then load it while the open path
  // fails once deterministically: the retry layer must absorb the fault.
  core::RankedMatch m;
  m.pair = data::RecordPair(0, 1);
  m.confidence = 0.9;
  m.block_score = 1.0;
  serve::ResolutionIndex index(
      core::RankedResolution(std::vector<core::RankedMatch>{m}), 2);
  std::string path = testing::TempDir() + "/faulted.yvx";
  ASSERT_TRUE(index.Save(path).ok());

  FaultConfig config;
  config.io_error_probability = 1.0;
  config.max_injections = 1;  // first open fails, the re-read succeeds
  ScopedFaultInjection arm(config);
  RetryPolicy policy;
  policy.sleep_fn = [](double) {};
  RetryStats stats;
  auto loaded = serve::ResolutionIndex::LoadWithRetry(path, policy, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(stats.attempts, 2);
  EXPECT_EQ(loaded->Checksum(), index.Checksum());
}

// ---------------------------------------------------------------------------
// serve::AdmissionController

TEST(AdmissionControllerTest, UnlimitedByDefault) {
  serve::AdmissionController admission({});
  EXPECT_TRUE(admission.unlimited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.Admit(Deadline()).ok());
  }
}

TEST(AdmissionControllerTest, ShedsWhenBudgetAndQueueAreFull) {
  serve::AdmissionController admission({/*max_in_flight=*/1,
                                        /*max_queue_depth=*/0});
  ASSERT_TRUE(admission.Admit(Deadline()).ok());
  Status second = admission.Admit(Deadline());
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  admission.Release();
  EXPECT_TRUE(admission.Admit(Deadline()).ok());
  admission.Release();
  auto snapshot = admission.snapshot();
  EXPECT_EQ(snapshot.admitted, 2u);
  EXPECT_EQ(snapshot.shed, 1u);
  EXPECT_EQ(snapshot.in_flight, 0u);
}

TEST(AdmissionControllerTest, QueuedCallerTimesOutWithDeadlineExceeded) {
  serve::AdmissionController admission({/*max_in_flight=*/1,
                                        /*max_queue_depth=*/1});
  ASSERT_TRUE(admission.Admit(Deadline()).ok());  // hold the only slot
  Status queued = admission.Admit(Deadline::AfterMillis(20));
  EXPECT_EQ(queued.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.snapshot().deadline_expired, 1u);
  admission.Release();
}

TEST(AdmissionControllerTest, QueuedCallerGetsSlotOnRelease) {
  serve::AdmissionController admission({/*max_in_flight=*/1,
                                        /*max_queue_depth=*/1});
  ASSERT_TRUE(admission.Admit(Deadline()).ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&admission, &admitted] {
    Status s = admission.Admit(Deadline());
    admitted.store(s.ok());
    if (s.ok()) admission.Release();
  });
  // Wait until the waiter is actually queued before releasing.
  while (admission.snapshot().queued == 0) std::this_thread::yield();
  admission.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.snapshot().admitted, 2u);
}

// ---------------------------------------------------------------------------
// data::DatasetFromCsvLenient — skip-and-quarantine ingest

constexpr char kGoodHeader[] =
    "book_id,source_id,source_kind,entity_id,family_id,values\n";

TEST(CsvLenientTest, QuarantinesBadRowsWithinBudget) {
  std::string text = std::string(kGoodHeader) +
                     "1,10,POT,5,7,FN_Guido;LN_Foa\n"
                     "oops,10,POT,5,7,FN_Bad\n"        // bad book_id
                     "2,11,LIST,6,8,FN_Rosa;G_F\n";
  data::CsvLoadOptions options;
  options.max_row_errors = 1;
  data::CsvLoadReport report;
  auto dataset = data::DatasetFromCsvLenient(text, options, &report);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->size(), 2u);
  EXPECT_EQ(report.rows_loaded, 2u);
  ASSERT_EQ(report.row_errors.size(), 1u);
  EXPECT_EQ(report.row_errors[0].row, 3u);     // 1-based, header is row 1
  EXPECT_EQ(report.row_errors[0].column, 1u);  // book_id field
  EXPECT_NE(report.row_errors[0].message.find("book_id"), std::string::npos);
}

TEST(CsvLenientTest, ExceedingTheBudgetIsDataLoss) {
  std::string text = std::string(kGoodHeader) +
                     "1,10,POT,5,7,FN_Guido\n"
                     "oops,10,POT,5,7,FN_Bad\n"
                     "2,11,LIST,bad,8,FN_Rosa\n";
  data::CsvLoadOptions options;
  options.max_row_errors = 1;  // two bad rows: one over budget
  auto dataset = data::DatasetFromCsvLenient(text, options);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(dataset.status().ToString().find("budget"), std::string::npos);
}

TEST(CsvLenientTest, BudgetExactlyCoveringErrorsSucceeds) {
  std::string text = std::string(kGoodHeader) +
                     "oops,10,POT,5,7,FN_Bad\n"
                     "2,11,LIST,bad,8,FN_Rosa\n"
                     "3,12,POT,9,9,FN_Ugo\n";
  data::CsvLoadOptions options;
  options.max_row_errors = 2;
  data::CsvLoadReport report;
  auto dataset = data::DatasetFromCsvLenient(text, options, &report);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 1u);
  EXPECT_EQ(report.row_errors.size(), 2u);
}

TEST(CsvLenientTest, ZeroBudgetReproducesStrictBehaviour) {
  std::string bad = std::string(kGoodHeader) + "oops,10,POT,5,7,FN_Bad\n";
  auto lenient = data::DatasetFromCsvLenient(bad);
  EXPECT_EQ(lenient.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(data::DatasetFromCsv(bad).has_value());

  std::string good = std::string(kGoodHeader) + "1,10,POT,5,7,FN_Guido\n";
  auto strict = data::DatasetFromCsv(good);
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(strict->size(), 1u);
}

TEST(CsvLenientTest, BadHeaderHasNoBudget) {
  data::CsvLoadOptions options;
  options.max_row_errors = 1000;
  auto dataset = data::DatasetFromCsvLenient("not,a,dataset\n", options);
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvLenientTest, ValueColumnDiagnosticsPointAtColumnSix) {
  std::string text = std::string(kGoodHeader) +
                     "1,10,POT,5,7,XX_NoSuchAttribute\n";
  data::CsvLoadOptions options;
  options.max_row_errors = 1;
  data::CsvLoadReport report;
  auto dataset = data::DatasetFromCsvLenient(text, options, &report);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(report.row_errors.size(), 1u);
  EXPECT_EQ(report.row_errors[0].column, 6u);
}

// ---------------------------------------------------------------------------
// core::LoadMatchesCsv corruption handling

TEST(MatchesCsvTest, NanConfidenceIsDataLossNotData) {
  data::Dataset dataset;
  for (uint64_t i = 1; i <= 2; ++i) {
    data::Record r;
    r.book_id = i;
    dataset.Add(std::move(r));
  }
  std::string path = testing::TempDir() + "/nan_matches.csv";
  {
    std::ofstream f(path, std::ios::binary);
    f << "book_id_a,book_id_b,confidence,block_score\n"
      << "1,2,nan,0.5\n";
  }
  auto loaded = core::LoadMatchesCsv(dataset, path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().ToString().find("NaN"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ResolutionService deadline / shedding / degraded behaviour

class ServiceRobustnessTest : public testing::Test {
 protected:
  static core::RankedResolution MakeResolution(size_t num_records) {
    util::Rng rng(11);
    std::vector<core::RankedMatch> matches;
    for (data::RecordIdx a = 0; a + 1 < num_records; ++a) {
      core::RankedMatch m;
      m.pair = data::RecordPair(a, a + 1);
      m.confidence = 0.5 + 0.4 * rng.UniformDouble();
      m.block_score = rng.UniformDouble();
      matches.push_back(m);
    }
    return core::RankedResolution(std::move(matches));
  }

  std::shared_ptr<const serve::ResolutionIndex> MakeIndex(
      size_t num_records = 64) {
    return std::make_shared<const serve::ResolutionIndex>(
        MakeResolution(num_records), num_records);
  }

  static serve::Query MakeQuery(data::RecordIdx record) {
    serve::Query query;
    query.record = record;
    query.certainty = 0.0;
    return query;
  }
};

TEST_F(ServiceRobustnessTest, ExpiredDeadlineIsTypedAndCounted) {
  serve::ResolutionService service(MakeIndex());
  serve::Query query = MakeQuery(3);
  query.deadline = Deadline::ExpiredNow();
  auto result = service.QueryRecord(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  query.deadline = Deadline::AfterMillis(0);  // zero budget, same outcome
  result = service.QueryRecord(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  auto metrics = service.metrics();
  EXPECT_EQ(metrics.deadline_exceeded, 2u);
  EXPECT_EQ(metrics.errors, 2u);
  EXPECT_EQ(metrics.shed, 0u);
}

TEST_F(ServiceRobustnessTest, InfiniteAndGenerousDeadlinesAnswerNormally) {
  serve::ResolutionService service(MakeIndex());
  serve::Query query = MakeQuery(3);
  ASSERT_TRUE(service.QueryRecord(query).ok());
  query.deadline = Deadline::AfterMillis(60000);
  ASSERT_TRUE(service.QueryRecord(query).ok());
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.deadline_exceeded, 0u);
  EXPECT_EQ(metrics.errors, 0u);
}

TEST_F(ServiceRobustnessTest, ExpiredDeadlinesInsideBatchAreTyped) {
  serve::ResolutionService service(MakeIndex());
  std::vector<serve::Query> batch;
  for (data::RecordIdx r = 0; r < 16; ++r) {
    serve::Query query = MakeQuery(r);
    if (r % 2 == 0) query.deadline = Deadline::ExpiredNow();
    batch.push_back(query);
  }
  auto results = service.QueryBatch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].status().code(), StatusCode::kDeadlineExceeded);
    } else {
      EXPECT_TRUE(results[i].ok());
    }
  }
  EXPECT_EQ(service.metrics().deadline_exceeded, 8u);
}

TEST_F(ServiceRobustnessTest, SaturationShedsWithResourceExhausted) {
  serve::ServiceOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 0;
  options.cache_capacity = 0;  // no degraded fallback in this test
  serve::ResolutionService service(MakeIndex(), options);

  // Hold the single admission slot with a query whose compute stalls on a
  // deterministic injected latency spike.
  FaultConfig config;
  config.latency_probability = 1.0;
  config.latency_micros = 300000;  // 300 ms
  ScopedFaultInjection arm(config);

  std::thread holder([&service] {
    auto result = service.QueryRecord(MakeQuery(1));
    EXPECT_TRUE(result.ok());
  });
  // The compute fault fires only after the slot is taken; once it has, the
  // holder sleeps inside the spike with the slot held.
  while (FaultInjector::Global().injections(FaultPoint::kServiceCompute) ==
         0) {
    std::this_thread::yield();
  }
  auto shed = service.QueryRecord(MakeQuery(2));
  holder.join();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.shed, 1u);
  EXPECT_EQ(metrics.errors, 1u);
  EXPECT_EQ(metrics.degraded, 0u);
}

TEST_F(ServiceRobustnessTest, ShedQueryWithCachedAnswerDegradesGracefully) {
  serve::ServiceOptions options;
  options.max_in_flight = 1;
  options.max_queue_depth = 0;
  serve::ResolutionService service(MakeIndex(), options);

  // Prime the cache with the answer the shed query will fall back to.
  serve::Query hot = MakeQuery(5);
  auto primed = service.QueryRecord(hot);
  ASSERT_TRUE(primed.ok());

  FaultConfig config;
  config.latency_probability = 1.0;
  config.latency_micros = 300000;
  ScopedFaultInjection arm(config);

  std::thread holder([&service] {
    auto result = service.QueryRecord(MakeQuery(9));  // cold: computes
    EXPECT_TRUE(result.ok());
  });
  while (FaultInjector::Global().injections(FaultPoint::kServiceCompute) ==
         0) {
    std::this_thread::yield();
  }
  auto degraded = service.QueryRecord(hot);
  holder.join();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_TRUE(degraded->from_cache);
  EXPECT_EQ(degraded->matches.size(), primed->matches.size());
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.degraded, 1u);
  EXPECT_EQ(metrics.shed, 1u);
  EXPECT_EQ(metrics.errors, 0u) << "a degraded answer is not an error";
}

TEST_F(ServiceRobustnessTest, QueryEqualityIgnoresDeadline) {
  serve::Query a = MakeQuery(4);
  serve::Query b = MakeQuery(4);
  b.deadline = Deadline::AfterMillis(5);
  EXPECT_EQ(a, b) << "deadline is delivery metadata, not query identity";
}

TEST_F(ServiceRobustnessTest, MetricsExposeLatencyPercentiles) {
  serve::ResolutionService service(MakeIndex());
  for (data::RecordIdx r = 0; r < 32; ++r) {
    ASSERT_TRUE(service.QueryRecord(MakeQuery(r)).ok());
  }
  auto metrics = service.metrics();
  ASSERT_EQ(metrics.latency_histogram_ns.size(),
            serve::kServiceLatencyBuckets);
  uint64_t total = 0;
  for (uint64_t c : metrics.latency_histogram_ns) total += c;
  EXPECT_EQ(total, 32u);
  double p50 = metrics.LatencyPercentileMs(0.50);
  double p99 = metrics.LatencyPercentileMs(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
}

TEST_F(ServiceRobustnessTest, ResetMetricsClearsFailureCounters) {
  serve::ResolutionService service(MakeIndex());
  serve::Query query = MakeQuery(1);
  query.deadline = Deadline::ExpiredNow();
  ASSERT_FALSE(service.QueryRecord(query).ok());
  service.ResetMetrics();
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.queries, 0u);
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_EQ(metrics.deadline_exceeded, 0u);
  double total = 0;
  for (uint64_t c : metrics.latency_histogram_ns) total += c;
  EXPECT_EQ(total, 0);
}

}  // namespace
}  // namespace yver
