#include <gtest/gtest.h>

#include "data/sample.h"
#include "synth/generator.h"

namespace yver::data {
namespace {

TEST(SampleTest, FilterByCountryMatchesAnyPlace) {
  Dataset ds;
  Record a;
  a.Add(AttributeId::kPermCountry, "Italy");
  ds.Add(std::move(a));
  Record b;
  b.Add(AttributeId::kDeathCountry, "Italy");
  ds.Add(std::move(b));
  Record c;
  c.Add(AttributeId::kPermCountry, "Poland");
  ds.Add(std::move(c));
  auto italy = FilterByCountry(ds, "Italy");
  EXPECT_EQ(italy.size(), 2u);
}

TEST(SampleTest, UniformFractionApproximate) {
  synth::GeneratorConfig config;
  config.num_persons = 1500;
  auto generated = synth::Generate(config);
  util::Rng rng(3);
  auto half = SampleUniform(generated.dataset, 0.5, rng);
  double ratio = static_cast<double>(half.size()) /
                 static_cast<double>(generated.dataset.size());
  EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(SampleTest, EntitySamplePreservesClusters) {
  synth::GeneratorConfig config;
  config.num_persons = 800;
  auto generated = synth::Generate(config);
  util::Rng rng(5);
  auto sample = SampleByEntity(generated.dataset, 0.4, rng);
  // Every sampled entity keeps ALL its reports: per-entity report counts
  // match the original.
  auto orig_groups = generated.dataset.GroupByEntity();
  auto sample_groups = sample.GroupByEntity();
  for (const auto& [entity, members] : sample_groups) {
    EXPECT_EQ(members.size(), orig_groups.at(entity).size())
        << "entity " << entity << " lost reports in sampling";
  }
  // Gold pair density is preserved, not destroyed (unlike uniform
  // record sampling, which halves pair counts quadratically).
  double orig_pairs_per_record =
      static_cast<double>(generated.dataset.NumGoldPairs()) /
      static_cast<double>(generated.dataset.size());
  double sample_pairs_per_record =
      static_cast<double>(sample.NumGoldPairs()) /
      static_cast<double>(sample.size());
  EXPECT_NEAR(sample_pairs_per_record, orig_pairs_per_record,
              orig_pairs_per_record * 0.35);
}

TEST(SampleTest, EmptyAndDegenerate) {
  Dataset empty;
  util::Rng rng(7);
  EXPECT_EQ(SampleUniform(empty, 0.5, rng).size(), 0u);
  EXPECT_EQ(FilterByCountry(empty, "Italy").size(), 0u);
  synth::GeneratorConfig config;
  config.num_persons = 50;
  auto generated = synth::Generate(config);
  EXPECT_EQ(SampleByEntity(generated.dataset, 1.0, rng).size(),
            generated.dataset.size());
  EXPECT_EQ(SampleByEntity(generated.dataset, 0.0, rng).size(), 0u);
}

}  // namespace
}  // namespace yver::data
