// Tests of the query-serving layer: ResolutionIndex round-trips,
// ResolutionService caching and concurrency, and the typed Query API.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/entity_clusters.h"
#include "core/ranked_resolution.h"
#include "serve/lru_cache.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using core::RankedMatch;
using core::RankedResolution;
using data::RecordPair;

// Random resolution over `num_records` records with deliberate confidence
// ties, so determinism of the ordering contract is actually exercised.
RankedResolution MakeRandomResolution(size_t num_records, size_t num_matches,
                                      uint64_t seed) {
  util::Rng rng(seed);
  std::set<RecordPair> seen;
  std::vector<RankedMatch> matches;
  while (matches.size() < num_matches) {
    auto a = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    auto b = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(num_records) - 1));
    if (a == b) continue;
    RecordPair pair(a, b);
    if (!seen.insert(pair).second) continue;
    RankedMatch m;
    m.pair = pair;
    // Quantized confidences: plenty of exact ties.
    m.confidence = rng.UniformInt(-2, 20) / 10.0;
    m.block_score = rng.UniformDouble();
    matches.push_back(m);
  }
  return RankedResolution(std::move(matches));
}

// The pre-index reference semantics: linear scan of the sorted match list.
std::vector<RankedMatch> LinearForRecord(const std::vector<RankedMatch>& all,
                                         data::RecordIdx r,
                                         double certainty) {
  std::vector<RankedMatch> out;
  for (const auto& m : all) {
    if (m.confidence <= certainty) break;
    if (m.pair.a == r || m.pair.b == r) out.push_back(m);
  }
  return out;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// util::Status / StatusOr

TEST(StatusTest, OkAndErrorsRoundTrip) {
  EXPECT_TRUE(util::Status::Ok().ok());
  auto bad = util::Status::InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.ToString(), "INVALID_ARGUMENT: nope");
}

TEST(StatusTest, StatusOrHoldsValueOrStatus) {
  util::StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);
  util::StatusOr<int> error(util::Status::NotFound("missing"));
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), util::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// RankedResolution delegating to the adjacency index

TEST(RankedResolutionIndexTest, ForRecordMatchesLinearScan) {
  auto res = MakeRandomResolution(200, 600, /*seed=*/3);
  for (double certainty : {-3.0, -0.5, 0.0, 0.3, 0.7, 1.0, 2.5}) {
    for (data::RecordIdx r = 0; r < 200; r += 7) {
      EXPECT_EQ(res.ForRecord(r, certainty),
                LinearForRecord(res.matches(), r, certainty));
    }
  }
}

TEST(RankedResolutionIndexTest, DeterministicAcrossInputPermutations) {
  auto res = MakeRandomResolution(50, 200, /*seed=*/9);
  // Re-feed the same matches reversed: the ordering contract promises an
  // identical sorted list.
  std::vector<RankedMatch> reversed(res.matches().rbegin(),
                                    res.matches().rend());
  RankedResolution again(std::move(reversed));
  EXPECT_EQ(res.matches(), again.matches());
}

// ---------------------------------------------------------------------------
// ResolutionIndex

class ResolutionIndexTest : public testing::Test {
 protected:
  void SetUp() override {
    resolution_ = MakeRandomResolution(kRecords, kMatches, /*seed=*/11);
    index_ = ResolutionIndex(resolution_, kRecords);
  }

  static constexpr size_t kRecords = 300;
  static constexpr size_t kMatches = 900;
  RankedResolution resolution_;
  ResolutionIndex index_;
};

TEST_F(ResolutionIndexTest, AgreesWithRankedResolution) {
  for (double certainty : {-3.0, 0.0, 0.45, 1.0}) {
    EXPECT_EQ(index_.AboveThreshold(certainty),
              resolution_.AboveThreshold(certainty));
    EXPECT_EQ(index_.CountAbove(certainty),
              resolution_.CountAboveThreshold(certainty));
    for (data::RecordIdx r = 0; r < kRecords; r += 13) {
      EXPECT_EQ(index_.ForRecord(r, certainty),
                resolution_.ForRecord(r, certainty));
    }
  }
  EXPECT_EQ(index_.TopK(17), resolution_.TopK(17));
  EXPECT_EQ(index_.TopK(kMatches + 50), resolution_.matches());
}

TEST_F(ResolutionIndexTest, KTruncatesForRecord) {
  for (data::RecordIdx r = 0; r < kRecords; r += 29) {
    auto all = index_.ForRecord(r, -5.0);
    auto top2 = index_.ForRecord(r, -5.0, 2);
    ASSERT_LE(top2.size(), 2u);
    for (size_t i = 0; i < top2.size(); ++i) EXPECT_EQ(top2[i], all[i]);
  }
}

TEST_F(ResolutionIndexTest, SaveLoadRoundTripIsByteIdentical) {
  std::string path = TempPath("roundtrip.yvx");
  ASSERT_TRUE(index_.Save(path).ok());
  auto loaded = ResolutionIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_records(), index_.num_records());
  // Arena equality is bitwise for the doubles, so every query result over
  // the loaded index is byte-identical to the in-memory one.
  EXPECT_EQ(loaded->matches(), index_.matches());
  for (double certainty : {-1.0, 0.0, 0.5}) {
    for (data::RecordIdx r = 0; r < kRecords; r += 31) {
      EXPECT_EQ(loaded->ForRecord(r, certainty),
                index_.ForRecord(r, certainty));
    }
  }
  std::remove(path.c_str());
}

TEST_F(ResolutionIndexTest, LoadRejectsMissingCorruptAndTruncated) {
  EXPECT_EQ(ResolutionIndex::Load(TempPath("no-such-file.yvx")).status().code(),
            util::StatusCode::kNotFound);

  std::string garbage = TempPath("garbage.yvx");
  { std::ofstream(garbage, std::ios::binary) << "definitely not an index"; }
  EXPECT_EQ(ResolutionIndex::Load(garbage).status().code(),
            util::StatusCode::kDataLoss);
  std::remove(garbage.c_str());

  std::string truncated = TempPath("truncated.yvx");
  ASSERT_TRUE(index_.Save(truncated).ok());
  {
    std::ifstream in(truncated, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream(truncated, std::ios::binary) << bytes;
  }
  EXPECT_EQ(ResolutionIndex::Load(truncated).status().code(),
            util::StatusCode::kDataLoss);
  std::remove(truncated.c_str());
}

TEST_F(ResolutionIndexTest, ClustersMatchEntityClusters) {
  core::EntityClusters direct(resolution_, kRecords, 0.4);
  core::EntityClusters sliced = index_.ClustersAt(0.4);
  EXPECT_EQ(direct.clusters(), sliced.clusters());
}

// Crash-atomicity regression: Save writes through a temp file and renames,
// so a save that fails mid-write must leave a previously saved artifact
// untouched and loadable, and must not leave the temp file behind.
TEST_F(ResolutionIndexTest, FailedSaveLeavesOldArtifactIntact) {
  std::string path = TempPath("atomic-save.yvx");
  ASSERT_TRUE(index_.Save(path).ok());
  uint64_t old_checksum = index_.Checksum();

  // A different index targeting the same path.
  auto other_resolution = MakeRandomResolution(64, 128, /*seed=*/77);
  ResolutionIndex other(other_resolution, 64);
  ASSERT_NE(other.Checksum(), old_checksum);

  {
    util::FaultConfig config;
    config.seed = 17;
    config.io_error_probability = 1.0;
    config.max_injections = 1;
    util::FaultInjector::Global().Arm(config);
    auto failed = other.Save(path);
    util::FaultInjector::Global().Disarm();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.code(), util::StatusCode::kUnavailable);
  }

  // The old artifact is still the one on disk, byte-for-byte loadable.
  auto loaded = ResolutionIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Checksum(), old_checksum);
  // No orphaned temp file next to the target.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ShardedQueryCache

TEST(ShardedQueryCacheTest, EvictsLeastRecentlyUsed) {
  ShardedQueryCache cache(/*capacity=*/2, /*num_shards=*/1);
  constexpr uint64_t kGen = 1;
  Query q1{1, 0.0, 0, Granularity::kMatches};
  Query q2{2, 0.0, 0, Granularity::kMatches};
  Query q3{3, 0.0, 0, Granularity::kMatches};
  cache.Put(q1, kGen, std::make_shared<QueryResult>());
  cache.Put(q2, kGen, std::make_shared<QueryResult>());
  EXPECT_NE(cache.Get(q1, kGen), nullptr);  // q1 now MRU
  cache.Put(q3, kGen, std::make_shared<QueryResult>());
  EXPECT_EQ(cache.Get(q2, kGen), nullptr);  // q2 was LRU -> evicted
  EXPECT_NE(cache.Get(q1, kGen), nullptr);
  EXPECT_NE(cache.Get(q3, kGen), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ShardedQueryCacheTest, DistinguishesAllKeyFields) {
  ShardedQueryCache cache(/*capacity=*/64);
  constexpr uint64_t kGen = 3;
  Query base{5, 0.25, 0, Granularity::kMatches};
  cache.Put(base, kGen, std::make_shared<QueryResult>());
  Query other_certainty = base;
  other_certainty.certainty = 0.75;
  Query other_k = base;
  other_k.k = 3;
  Query other_granularity = base;
  other_granularity.granularity = Granularity::kEntity;
  EXPECT_NE(cache.Get(base, kGen), nullptr);
  EXPECT_EQ(cache.Get(other_certainty, kGen), nullptr);
  EXPECT_EQ(cache.Get(other_k, kGen), nullptr);
  EXPECT_EQ(cache.Get(other_granularity, kGen), nullptr);
}

// The PR-7 bugfix regression: the key must carry the index generation, or
// an answer computed against a retired snapshot would be served as fresh
// after a publish. Same semantic query, different generation -> miss.
TEST(ShardedQueryCacheTest, DistinguishesGenerations) {
  ShardedQueryCache cache(/*capacity=*/64);
  Query q{7, 0.5, 0, Granularity::kMatches};
  auto gen1 = std::make_shared<QueryResult>();
  gen1->generation = 1;
  cache.Put(q, /*generation=*/1, gen1);
  EXPECT_NE(cache.Get(q, /*generation=*/1), nullptr);
  EXPECT_EQ(cache.Get(q, /*generation=*/2), nullptr);
  auto gen2 = std::make_shared<QueryResult>();
  gen2->generation = 2;
  cache.Put(q, /*generation=*/2, gen2);
  // Both generations coexist; each lookup gets its own generation's bytes.
  EXPECT_EQ(cache.Get(q, /*generation=*/1)->generation, 1u);
  EXPECT_EQ(cache.Get(q, /*generation=*/2)->generation, 2u);
}

// The staleness bound behind ServiceOptions::max_stale_generations: a
// sweep drops exactly the entries older than the floor, newer ones stay.
TEST(ShardedQueryCacheTest, EvictOlderThanDropsOnlyStaleGenerations) {
  ShardedQueryCache cache(/*capacity=*/64);
  Query q{7, 0.5, 0, Granularity::kMatches};
  for (uint64_t gen = 1; gen <= 5; ++gen) {
    cache.Put(q, gen, std::make_shared<QueryResult>());
  }
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.EvictOlderThan(/*min_generation=*/3), 2u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Get(q, 1), nullptr);
  EXPECT_EQ(cache.Get(q, 2), nullptr);
  EXPECT_NE(cache.Get(q, 3), nullptr);
  EXPECT_NE(cache.Get(q, 4), nullptr);
  EXPECT_NE(cache.Get(q, 5), nullptr);
  // Idempotent, and a floor of 0 touches nothing.
  EXPECT_EQ(cache.EvictOlderThan(3), 0u);
  EXPECT_EQ(cache.EvictOlderThan(0), 0u);
}

// ---------------------------------------------------------------------------
// ResolutionService

class ResolutionServiceTest : public testing::Test {
 protected:
  void SetUp() override {
    auto resolution = MakeRandomResolution(kRecords, kMatches, /*seed=*/23);
    index_ = std::make_shared<const ResolutionIndex>(resolution, kRecords);
  }

  static constexpr size_t kRecords = 500;
  static constexpr size_t kMatches = 1500;
  std::shared_ptr<const ResolutionIndex> index_;
};

TEST_F(ResolutionServiceTest, CacheHitAndMissCounters) {
  ResolutionService service(index_);
  Query query{7, 0.2, 0, Granularity::kMatches};
  auto first = service.QueryRecord(query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  auto second = service.QueryRecord(query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(second->matches, first->matches);
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.queries, 2u);
  EXPECT_EQ(metrics.cache_misses, 1u);
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_DOUBLE_EQ(metrics.HitRate(), 0.5);
}

// The serve-stale bound: each publish sweeps cache entries more than
// max_stale_generations behind the newly installed generation, and the
// evicted_stale counter records the reclaim.
TEST_F(ResolutionServiceTest, PublishEvictsEntriesPastStalenessBound) {
  ServiceOptions options;
  options.max_stale_generations = 2;
  ResolutionService service(index_, options);
  Query query{7, 0.2, 0, Granularity::kMatches};
  ASSERT_TRUE(service.QueryRecord(query).ok());  // cached under gen 1

  auto publish = [&] {
    auto resolution =
        MakeRandomResolution(kRecords, kMatches, service.metrics().publishes);
    auto published = service.PublishIndex(
        std::make_shared<const ResolutionIndex>(resolution, kRecords));
    ASSERT_TRUE(published.ok()) << published.status().ToString();
  };

  publish();                                     // gen 2: floor 0
  ASSERT_TRUE(service.QueryRecord(query).ok());  // cached under gen 2
  EXPECT_EQ(service.metrics().evicted_stale, 0u);
  publish();  // gen 3: floor 1, the gen-1 entry is exactly at the bound
  EXPECT_EQ(service.metrics().evicted_stale, 0u);
  publish();  // gen 4: floor 2 evicts the gen-1 entry
  EXPECT_EQ(service.metrics().evicted_stale, 1u);
  publish();  // gen 5: floor 3 evicts the gen-2 entry
  EXPECT_EQ(service.metrics().evicted_stale, 2u);
  publish();  // gen 6: nothing stale is left
  EXPECT_EQ(service.metrics().evicted_stale, 2u);
}

TEST_F(ResolutionServiceTest, ZeroStalenessBoundDisablesEviction) {
  ServiceOptions options;
  options.max_stale_generations = 0;
  ResolutionService service(index_, options);
  Query query{7, 0.2, 0, Granularity::kMatches};
  ASSERT_TRUE(service.QueryRecord(query).ok());
  for (uint64_t i = 0; i < 6; ++i) {
    auto published = service.PublishIndex(index_);
    ASSERT_TRUE(published.ok());
  }
  EXPECT_EQ(service.metrics().evicted_stale, 0u);
}

TEST_F(ResolutionServiceTest, DisabledCacheNeverHits) {
  ServiceOptions options;
  options.cache_capacity = 0;
  ResolutionService service(index_, options);
  Query query{7, 0.2, 0, Granularity::kMatches};
  ASSERT_TRUE(service.QueryRecord(query).ok());
  auto again = service.QueryRecord(query);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->from_cache);
  EXPECT_EQ(service.metrics().cache_hits, 0u);
}

TEST_F(ResolutionServiceTest, CertaintyEdgeCases) {
  ResolutionService service(index_);
  // certainty is a strict lower bound: at 0.0, confidence-0 matches drop.
  Query at_zero{3, 0.0, 0, Granularity::kMatches};
  auto r0 = service.QueryRecord(at_zero);
  ASSERT_TRUE(r0.ok());
  for (const auto& m : r0->matches) EXPECT_GT(m.confidence, 0.0);

  // At 1.0 nothing above the synthetic max of 2.0 except high scores; all
  // returned matches must be strictly greater.
  Query at_one{3, 1.0, 0, Granularity::kMatches};
  auto r1 = service.QueryRecord(at_one);
  ASSERT_TRUE(r1.ok());
  for (const auto& m : r1->matches) EXPECT_GT(m.confidence, 1.0);

  // Beyond the maximum confidence: empty, not an error.
  Query above_all{3, 1e9, 0, Granularity::kMatches};
  auto r2 = service.QueryRecord(above_all);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->matches.empty());

  // NaN certainty is rejected.
  Query nan_query{3, std::numeric_limits<double>::quiet_NaN(), 0,
                  Granularity::kMatches};
  auto rejected = service.QueryRecord(nan_query);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kInvalidArgument);

  // Out-of-corpus record is rejected.
  Query beyond{static_cast<data::RecordIdx>(kRecords), 0.0, 0,
               Granularity::kMatches};
  auto out_of_range = service.QueryRecord(beyond);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), util::StatusCode::kOutOfRange);
  EXPECT_EQ(service.metrics().errors, 2u);
}

TEST_F(ResolutionServiceTest, EntityGranularityMatchesClusters) {
  ResolutionService service(index_);
  core::EntityClusters clusters = index_->ClustersAt(0.3);
  for (data::RecordIdx r = 0; r < kRecords; r += 41) {
    Query query{r, 0.3, 0, Granularity::kEntity};
    auto result = service.QueryRecord(query);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->entity, clusters.Members(r));
    EXPECT_TRUE(result->matches.empty());
  }
  // k truncates entity members too.
  Query truncated{0, 0.3, 1, Granularity::kEntity};
  auto result = service.QueryRecord(truncated);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entity.size(), 1u);
}

TEST_F(ResolutionServiceTest, BatchEqualsSingleUnderEightThreads) {
  // The acceptance-scale setup: a 5k-record synthetic corpus, >=10k
  // queries, batch fanned over 8 threads vs the per-query reference.
  constexpr size_t kCorpus = 5000;
  auto resolution = MakeRandomResolution(kCorpus, 15000, /*seed=*/31);
  auto index =
      std::make_shared<const ResolutionIndex>(resolution, kCorpus);
  ServiceOptions options;
  options.num_threads = 8;
  ResolutionService batch_service(index, options);

  util::Rng rng(99);
  std::vector<Query> queries;
  const double thresholds[] = {-1.0, 0.0, 0.3, 0.6, 1.0};
  for (size_t i = 0; i < 10000; ++i) {
    Query query;
    query.record = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int64_t>(kCorpus) - 1));
    query.certainty = thresholds[rng.UniformInt(0, 4)];
    query.k = static_cast<size_t>(rng.UniformInt(0, 3));
    query.granularity =
        rng.Bernoulli(0.25) ? Granularity::kEntity : Granularity::kMatches;
    queries.push_back(query);
  }
  auto batch = batch_service.QueryBatch(queries);
  ASSERT_EQ(batch.size(), queries.size());

  // Reference: an uncached single-threaded service plus the linear-scan
  // semantics of RankedResolution::ForRecord.
  ServiceOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.cache_capacity = 0;
  ResolutionService reference(index, reference_options);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    auto single = reference.QueryRecord(queries[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch[i]->matches, single->matches);
    EXPECT_EQ(batch[i]->entity, single->entity);
    if (queries[i].granularity == Granularity::kMatches &&
        queries[i].k == 0) {
      EXPECT_EQ(batch[i]->matches,
                resolution.ForRecord(queries[i].record,
                                     queries[i].certainty));
      EXPECT_EQ(batch[i]->matches,
                LinearForRecord(index->matches(), queries[i].record,
                                queries[i].certainty));
    }
  }
}

TEST_F(ResolutionServiceTest, ConcurrentMixedTrafficIsRaceFree) {
  // Shared service hammered by single queries, a batch, and a stream at
  // once — the TSan preset (cmake -DYVER_SANITIZE=thread) race-checks this.
  ServiceOptions options;
  options.num_threads = 4;
  options.cache_capacity = 256;  // small: forces concurrent evictions
  ResolutionService service(index_, options);

  std::vector<Query> workload;
  for (size_t i = 0; i < 512; ++i) {
    Query query;
    query.record = static_cast<data::RecordIdx>(i % kRecords);
    query.certainty = (i % 5) * 0.2;
    query.granularity =
        i % 3 == 0 ? Granularity::kEntity : Granularity::kMatches;
    workload.push_back(query);
  }

  std::atomic<size_t> streamed{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&service, &workload, t] {
      for (size_t i = t; i < workload.size(); i += 2) {
        auto result = service.QueryRecord(workload[i]);
        ASSERT_TRUE(result.ok());
      }
    });
  }
  threads.emplace_back([&service, &workload] {
    auto results = service.QueryBatch(workload);
    for (const auto& r : results) ASSERT_TRUE(r.ok());
  });
  threads.emplace_back([&service, &workload, &streamed] {
    service.QueryStream(workload,
                        [&streamed](size_t, util::StatusOr<QueryResult> r) {
                          ASSERT_TRUE(r.ok());
                          streamed.fetch_add(1);
                        });
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(streamed.load(), workload.size());
  EXPECT_EQ(service.metrics().errors, 0u);
}

}  // namespace
}  // namespace yver::serve
