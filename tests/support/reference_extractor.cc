// The pre-columnar FeatureExtractor implementation, kept as the reference
// the production path must match byte-for-byte. Any behavioral edit here
// changes the specification — don't "optimize" this file.

#include "support/reference_extractor.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "geo/geo.h"
#include "text/jaccard.h"
#include "util/check.h"
#include "util/string_util.h"

namespace yver::features {

namespace {

using data::AttributeId;
using data::PlacePart;
using data::PlaceType;
using data::Record;

constexpr AttributeId kNameAttrs[] = {
    AttributeId::kFirstName,   AttributeId::kLastName,
    AttributeId::kSpouseName,  AttributeId::kFathersName,
    AttributeId::kMothersName, AttributeId::kMothersMaiden,
    AttributeId::kMaidenName,
};

constexpr PlaceType kPlaceTypes[] = {PlaceType::kBirth, PlaceType::kPermanent,
                                     PlaceType::kWartime, PlaceType::kDeath};

double ParseNumeric(std::string_view s) {
  return std::strtod(std::string(s).c_str(), nullptr);
}

// Fills `buf` with the lowercased, sorted, deduplicated values.
void LowerSorted(const Record::ValueRange& values,
                 std::vector<std::string>* buf) {
  buf->clear();
  for (auto v : values) buf->push_back(util::ToLower(v));
  std::sort(buf->begin(), buf->end());
  buf->erase(std::unique(buf->begin(), buf->end()), buf->end());
}

// Size of the intersection of two sorted unique value sets.
size_t IntersectionSize(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  size_t inter = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return inter;
}

bool AnyCommon(const std::vector<std::string>& a,
               const std::vector<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

// Trinary agreement of two value sets (sameXName semantics).
NameAgreement Agreement(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) {
  size_t inter = IntersectionSize(a, b);
  if (inter == 0) return NameAgreement::kNo;
  if (inter == a.size() && inter == b.size()) return NameAgreement::kYes;
  return NameAgreement::kPartial;
}

}  // namespace

ReferenceFeatureExtractor::ReferenceFeatureExtractor(
    const data::EncodedDataset& encoded)
    : encoded_(encoded) {
  YVER_CHECK(encoded.dataset != nullptr);
}

FeatureVector ReferenceFeatureExtractor::Extract(data::RecordIdx a,
                                                 data::RecordIdx b) const {
  Scratch scratch;
  FeatureVector fv;
  ExtractInto(a, b, &scratch, &fv);
  return fv;
}

void ReferenceFeatureExtractor::ExtractInto(data::RecordIdx a,
                                            data::RecordIdx b,
                                            Scratch* scratch,
                                            FeatureVector* out) const {
  const FeatureSchema& schema = FeatureSchema::Get();
  const Record& ra = (*encoded_.dataset)[a];
  const Record& rb = (*encoded_.dataset)[b];
  FeatureVector& fv = *out;
  fv.values.assign(schema.size(), MissingValue());
  std::vector<std::string>& sa = scratch->lower_a;
  std::vector<std::string>& sb = scratch->lower_b;
  size_t next = 0;
  auto emit = [&fv, &next](double v) { fv.values[next++] = v; };
  auto skip = [&next] { ++next; };

  // 1..7: sameXName.
  for (AttributeId attr : kNameAttrs) {
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    LowerSorted(va, &sa);
    LowerSorted(vb, &sb);
    emit(static_cast<double>(Agreement(sa, sb)));
  }
  // 8..14: XnameDist — maximum q-gram Jaccard over the value cross product.
  for (AttributeId attr : kNameAttrs) {
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    LowerSorted(va, &sa);
    LowerSorted(vb, &sb);
    double best = 0.0;
    for (const auto& x : sa) {
      for (const auto& y : sb) {
        best = std::max(best, text::QGramJaccard(x, y));
      }
    }
    emit(best);
  }
  // 15..17: raw birth-date component distances.
  const AttributeId date_attrs[] = {AttributeId::kBirthDay,
                                    AttributeId::kBirthMonth,
                                    AttributeId::kBirthYear};
  double date_dist[3] = {MissingValue(), MissingValue(), MissingValue()};
  for (size_t d = 0; d < 3; ++d) {
    auto va = ra.FirstValue(date_attrs[d]);
    auto vb = rb.FirstValue(date_attrs[d]);
    if (va.empty() || vb.empty()) {
      skip();
      continue;
    }
    date_dist[d] = std::abs(ParseNumeric(va) - ParseNumeric(vb));
    emit(date_dist[d]);
  }
  // 18..33: samePlaceXPartY.
  for (PlaceType type : kPlaceTypes) {
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      AttributeId attr =
          data::PlaceAttribute(type, static_cast<PlacePart>(p));
      auto va = ra.Values(attr);
      auto vb = rb.Values(attr);
      if (va.empty() || vb.empty()) {
        skip();
        continue;
      }
      LowerSorted(va, &sa);
      LowerSorted(vb, &sb);
      emit(AnyCommon(sa, sb) ? static_cast<double>(BinaryCode::kYes)
                             : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 34..37: PlaceXGeoDistance in km (min over city value pairs with known
  // coordinates).
  for (PlaceType type : kPlaceTypes) {
    AttributeId attr = data::PlaceAttribute(type, PlacePart::kCity);
    auto va = ra.Values(attr);
    auto vb = rb.Values(attr);
    double best = MissingValue();
    for (auto x : va) {
      auto ia = encoded_.dictionary.Find(attr, x);
      if (!ia || !encoded_.dictionary.geo(*ia)) continue;
      for (auto y : vb) {
        auto ib = encoded_.dictionary.Find(attr, y);
        if (!ib || !encoded_.dictionary.geo(*ib)) continue;
        double d = geo::HaversineKm(*encoded_.dictionary.geo(*ia),
                                    *encoded_.dictionary.geo(*ib));
        if (std::isnan(best) || d < best) best = d;
      }
    }
    if (std::isnan(best)) {
      skip();
    } else {
      emit(best);
    }
  }
  // 38..40: sameSource / sameGender / sameProfession.
  emit(ra.source_id == rb.source_id
           ? static_cast<double>(BinaryCode::kYes)
           : static_cast<double>(BinaryCode::kNo));
  {
    auto ga = ra.FirstValue(AttributeId::kGender);
    auto gb = rb.FirstValue(AttributeId::kGender);
    if (ga.empty() || gb.empty()) {
      skip();
    } else {
      emit(ga == gb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  {
    auto pa = ra.FirstValue(AttributeId::kProfession);
    auto pb = rb.FirstValue(AttributeId::kProfession);
    if (pa.empty() || pb.empty()) {
      skip();
    } else {
      emit(pa == pb ? static_cast<double>(BinaryCode::kYes)
                    : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 41..43: normalized birth-date similarities.
  const double norms[3] = {31.0, 12.0, 100.0};
  for (size_t d = 0; d < 3; ++d) {
    if (std::isnan(date_dist[d])) {
      skip();
    } else {
      emit(std::max(0.0, 1.0 - date_dist[d] / norms[d]));
    }
  }
  // 44..47: whole-place agreement per type (all present parts agree).
  for (PlaceType type : kPlaceTypes) {
    bool any_compared = false;
    bool all_agree = true;
    for (size_t p = 0; p < data::kNumPlaceParts; ++p) {
      AttributeId attr =
          data::PlaceAttribute(type, static_cast<PlacePart>(p));
      auto va = ra.Values(attr);
      auto vb = rb.Values(attr);
      if (va.empty() || vb.empty()) continue;
      any_compared = true;
      LowerSorted(va, &sa);
      LowerSorted(vb, &sb);
      all_agree = all_agree && AnyCommon(sa, sb);
    }
    if (!any_compared) {
      skip();
    } else {
      emit(all_agree ? static_cast<double>(BinaryCode::kYes)
                     : static_cast<double>(BinaryCode::kNo));
    }
  }
  // 48: overall item-bag Jaccard.
  emit(text::JaccardOfSortedIds(encoded_.bags[a], encoded_.bags[b]));

  YVER_CHECK(next == schema.size());
}

}  // namespace yver::features
