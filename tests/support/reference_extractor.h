#ifndef YVER_TESTS_SUPPORT_REFERENCE_EXTRACTOR_H_
#define YVER_TESTS_SUPPORT_REFERENCE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/item_dictionary.h"
#include "features/feature_schema.h"

namespace yver::features {

/// The original string-path 48-feature extractor, preserved verbatim as
/// the executable specification of the comparison stage. It re-lowercases,
/// re-sorts and re-q-grams raw Record strings and re-resolves dictionary /
/// geo lookups on every pair — exactly what the production columnar
/// FeatureExtractor precomputes at encode time.
///
/// Test- and bench-only: tests/feature_equivalence_test.cc property-tests
/// byte-equality of all 48 features against the columnar path, and
/// bench/bench_feature_extract.cc measures the speedup over it. Never link
/// this into production code.
class ReferenceFeatureExtractor {
 public:
  struct Scratch {
    std::vector<std::string> lower_a;
    std::vector<std::string> lower_b;
  };

  explicit ReferenceFeatureExtractor(const data::EncodedDataset& encoded);

  FeatureVector Extract(data::RecordIdx a, data::RecordIdx b) const;

  void ExtractInto(data::RecordIdx a, data::RecordIdx b, Scratch* scratch,
                   FeatureVector* out) const;

 private:
  const data::EncodedDataset& encoded_;
};

}  // namespace yver::features

#endif  // YVER_TESTS_SUPPORT_REFERENCE_EXTRACTOR_H_
