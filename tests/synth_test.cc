#include <map>
#include <set>

#include <gtest/gtest.h>

#include "data/stats.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/name_pool.h"
#include "synth/person_sampler.h"
#include "synth/source_model.h"
#include "synth/tag_oracle.h"

namespace yver::synth {
namespace {

using data::AttributeId;

// ---------------------------------------------------------------------------
// NamePool

TEST(NamePoolTest, PoolsAreLargeEnoughForRealisticCardinality) {
  for (size_t r = 0; r < kNumRegions; ++r) {
    NamePool pool(static_cast<Region>(r));
    EXPECT_GE(pool.male_first_names().size(), 80u) << RegionName(
        static_cast<Region>(r));
    EXPECT_GE(pool.female_first_names().size(), 80u);
    EXPECT_GE(pool.last_names().size(), 120u);
  }
}

TEST(NamePoolTest, SamplingIsSkewedButCoversTail) {
  NamePool pool(Region::kPoland);
  util::Rng rng(3);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[pool.SampleLastName(rng)];
  EXPECT_GT(counts.size(), 100u);  // tail coverage
  int max_count = 0;
  for (const auto& [name, count] : counts) max_count = std::max(max_count,
                                                                count);
  EXPECT_GT(max_count, 50);  // head skew
}

TEST(NamePoolTest, TransliterationVariantDiffersButIsClose) {
  util::Rng rng(5);
  for (const char* name : {"Kaminski", "Weisz", "Capelluto", "Moshe"}) {
    std::string v = NamePool::TransliterationVariant(name, rng);
    EXPECT_NE(v, name);
    EXPECT_LE(std::max(v.size(), std::string(name).size()) -
                  std::min(v.size(), std::string(name).size()),
              2u);
  }
}

TEST(NamePoolTest, TransliterationNeverTriplesConsonants) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string v = NamePool::TransliterationVariant("Marco", rng);
    EXPECT_EQ(v.find("rrr"), std::string::npos);
    v = NamePool::TransliterationVariant(v, rng);
    EXPECT_EQ(v.find("rrr"), std::string::npos) << v;
  }
}

TEST(NamePoolTest, NicknameRoundTrips) {
  util::Rng rng(9);
  EXPECT_EQ(NamePool::Nickname("Avraham", rng), "Avrum");
  EXPECT_EQ(NamePool::Nickname("Avrum", rng), "Avraham");
  EXPECT_EQ(NamePool::Nickname("Zzyzx", rng), "Zzyzx");  // unknown
}

TEST(NamePoolTest, ClericalErrorChangesOneEdit) {
  util::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    std::string v = NamePool::ClericalError("Bella", rng);
    // One edit away at most (substitute/drop/insert/transpose).
    EXPECT_LE(std::max(v.size(), size_t{5}) - std::min(v.size(), size_t{5}),
              1u);
  }
}

// ---------------------------------------------------------------------------
// Gazetteer

TEST(GazetteerTest, AllRegionsHaveCities) {
  Gazetteer gaz;
  for (size_t r = 0; r < kNumRegions; ++r) {
    EXPECT_GE(gaz.CitiesOf(static_cast<Region>(r)).size(), 10u);
  }
  EXPECT_GE(gaz.WartimePlaces().size(), 10u);
}

TEST(GazetteerTest, LookupFindsKnownCities) {
  Gazetteer gaz;
  auto turin = gaz.Lookup("Torino");
  ASSERT_TRUE(turin.has_value());
  EXPECT_NEAR(turin->lat_deg, 45.07, 0.01);
  EXPECT_TRUE(gaz.Lookup("Auschwitz").has_value());
  EXPECT_FALSE(gaz.Lookup("Atlantis").has_value());
}

TEST(GazetteerTest, TurinAndTurinSpellingShareCoordinates) {
  Gazetteer gaz;
  auto a = gaz.Lookup("Torino");
  auto b = gaz.Lookup("Turin");
  ASSERT_TRUE(a && b);
  EXPECT_DOUBLE_EQ(a->lat_deg, b->lat_deg);
}

TEST(GazetteerTest, SampleNearbyStaysInRegion) {
  Gazetteer gaz;
  util::Rng rng(13);
  const auto& home = gaz.CitiesOf(Region::kItaly)[0];
  for (int i = 0; i < 50; ++i) {
    const Place& p = gaz.SampleNearby(Region::kItaly, home, rng);
    EXPECT_EQ(p.country, "Italy");
    EXPECT_LT(geo::HaversineKm(home.point, p.point), 400.0);
  }
}

TEST(GazetteerTest, GeoResolverResolvesCityClassValues) {
  Gazetteer gaz;
  auto resolver = gaz.MakeGeoResolver();
  EXPECT_TRUE(resolver(AttributeId::kBirthCity, "Warszawa").has_value());
  EXPECT_FALSE(resolver(AttributeId::kBirthCity, "Nowhere").has_value());
}

// Lifetime regression (the `serve --live` crash): MakeGeoResolver captures
// the gazetteer by reference, so a resolver handed to a long-lived
// consumer must come from MakeOwnedGeoResolver, which keeps its gazetteer
// alive inside the callable and stays valid after every local scope ends.
TEST(GazetteerTest, OwnedGeoResolverOutlivesAnyScope) {
  data::GeoResolver resolver;
  { resolver = Gazetteer::MakeOwnedGeoResolver(); }
  auto copy = resolver;  // copies share the same owned gazetteer
  EXPECT_TRUE(resolver(AttributeId::kBirthCity, "Warszawa").has_value());
  EXPECT_TRUE(copy(AttributeId::kBirthCity, "Torino").has_value());
  EXPECT_FALSE(copy(AttributeId::kBirthCity, "Nowhere").has_value());
}

// ---------------------------------------------------------------------------
// PersonSampler

TEST(PersonSamplerTest, FamilyInvariants) {
  Gazetteer gaz;
  PersonSampler sampler(&gaz);
  util::Rng rng(17);
  int64_t entity = 0;
  int64_t family = 0;
  for (int i = 0; i < 50; ++i) {
    Family f = sampler.SampleFamily(Region::kPoland, &entity, &family, rng);
    ASSERT_GE(f.members.size(), 2u);
    const Person& father = f.members[0];
    const Person& mother = f.members[1];
    EXPECT_TRUE(father.male);
    EXPECT_FALSE(mother.male);
    EXPECT_EQ(father.last_name, mother.last_name);
    EXPECT_FALSE(mother.maiden_name.empty());
    EXPECT_EQ(father.spouse_first, mother.first_names[0]);
    EXPECT_EQ(mother.spouse_first, father.first_names[0]);
    std::set<std::string> first_names;
    for (const auto& m : f.members) {
      EXPECT_EQ(m.family_id, f.family_id);
      EXPECT_TRUE(first_names.insert(m.first_names[0]).second)
          << "duplicate first name in family";
    }
    for (size_t c = 2; c < f.members.size(); ++c) {
      EXPECT_EQ(f.members[c].last_name, father.last_name);
      EXPECT_EQ(f.members[c].father_first, father.first_names[0]);
      EXPECT_EQ(f.members[c].mother_maiden, mother.maiden_name);
      EXPECT_GE(f.members[c].birth_year, 1925);
    }
  }
  EXPECT_GT(entity, 0);
}

// ---------------------------------------------------------------------------
// SourceModel

TEST(SourceModelTest, ListPatternsAlwaysNameBearing) {
  SourceModel model;
  util::Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    FieldMask m = model.SampleListPattern(Region::kPoland, rng);
    EXPECT_TRUE(HasField(m, ReportField::kFirstName));
    EXPECT_TRUE(HasField(m, ReportField::kLastName));
  }
}

TEST(SourceModelTest, ItalySubmittersKnowFathers) {
  SourceModel model;
  util::Rng rng(23);
  int italy_father = 0;
  int poland_father = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    if (HasField(model.SampleSubmitterPattern(Region::kItaly, rng),
                 ReportField::kFatherName)) {
      ++italy_father;
    }
    if (HasField(model.SampleSubmitterPattern(Region::kPoland, rng),
                 ReportField::kFatherName)) {
      ++poland_father;
    }
  }
  EXPECT_GT(italy_father, poland_father);
}

TEST(SourceModelTest, MvPatternIsSparseAndFixed) {
  FieldMask m = SourceModel::MvPattern();
  EXPECT_TRUE(HasField(m, ReportField::kFirstName));
  EXPECT_TRUE(HasField(m, ReportField::kLastName));
  EXPECT_TRUE(HasField(m, ReportField::kFatherName));
  EXPECT_TRUE(HasField(m, ReportField::kBirthPlace));
  EXPECT_TRUE(HasField(m, ReportField::kDeathPlace));
  EXPECT_FALSE(HasField(m, ReportField::kDob));
  EXPECT_FALSE(HasField(m, ReportField::kGender));
}

// ---------------------------------------------------------------------------
// Generator

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_persons = 200;
  auto a = Generate(config);
  auto b = Generate(config);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  for (size_t i = 0; i < a.dataset.size(); ++i) {
    EXPECT_EQ(a.dataset[static_cast<data::RecordIdx>(i)].book_id,
              b.dataset[static_cast<data::RecordIdx>(i)].book_id);
    EXPECT_EQ(a.dataset[static_cast<data::RecordIdx>(i)].PresenceMask(),
              b.dataset[static_cast<data::RecordIdx>(i)].PresenceMask());
  }
}

TEST(GeneratorTest, EntityIdsIndexPersons) {
  GeneratorConfig config;
  config.num_persons = 300;
  auto generated = Generate(config);
  EXPECT_EQ(generated.persons.size(), 300u);
  for (size_t i = 0; i < generated.persons.size(); ++i) {
    EXPECT_EQ(generated.persons[i].entity_id, static_cast<int64_t>(i));
  }
  for (const auto& r : generated.dataset.records()) {
    ASSERT_GE(r.entity_id, 0);
    ASSERT_LT(r.entity_id, 300);
    EXPECT_EQ(generated.persons[static_cast<size_t>(r.entity_id)].family_id,
              r.family_id);
  }
}

TEST(GeneratorTest, DuplicateSetsBoundedByEight) {
  GeneratorConfig config;
  config.num_persons = 2000;
  auto generated = Generate(config);
  auto groups = generated.dataset.GroupByEntity();
  for (const auto& [entity, members] : groups) {
    EXPECT_LE(members.size(), 9u);  // <= 8 reports + possible MV extra
  }
}

TEST(GeneratorTest, NoPersonTwiceInSameList) {
  GeneratorConfig config;
  config.num_persons = 1500;
  auto generated = Generate(config);
  auto groups = generated.dataset.GroupByEntity();
  for (const auto& [entity, members] : groups) {
    std::set<uint32_t> sources;
    for (auto r : members) {
      EXPECT_TRUE(sources.insert(generated.dataset[r].source_id).second)
          << "entity " << entity << " appears twice in one source";
    }
  }
}

TEST(GeneratorTest, PotFractionRoughlyOneThird) {
  GeneratorConfig config;
  config.num_persons = 3000;
  auto generated = Generate(config);
  size_t pot = 0;
  for (const auto& r : generated.dataset.records()) {
    if (r.source_kind == data::SourceKind::kPageOfTestimony) ++pot;
  }
  double fraction = static_cast<double>(pot) / generated.dataset.size();
  EXPECT_GT(fraction, 0.15);
  EXPECT_LT(fraction, 0.45);
}

TEST(GeneratorTest, ItalyConfigIncludesMv) {
  auto generated = Generate(ItalyConfig());
  size_t mv = 0;
  for (const auto& r : generated.dataset.records()) {
    if (r.source_id == kMvSourceId) ++mv;
  }
  // ~28% of ~3800 persons.
  EXPECT_GT(mv, 500u);
  EXPECT_LT(mv, 2000u);
  // MV reports carry the fixed sparse pattern: no gender, no DOB.
  for (const auto& r : generated.dataset.records()) {
    if (r.source_id != kMvSourceId) continue;
    EXPECT_FALSE(r.Has(AttributeId::kGender));
    EXPECT_FALSE(r.Has(AttributeId::kBirthYear));
    EXPECT_TRUE(r.Has(AttributeId::kLastName));
  }
}

TEST(GeneratorTest, RegionWeightsRestrictRegions) {
  GeneratorConfig config;
  config.num_persons = 500;
  config.region_weights.assign(kNumRegions, 0.0);
  config.region_weights[static_cast<size_t>(Region::kGreece)] = 1.0;
  auto generated = Generate(config);
  for (const auto& p : generated.persons) {
    EXPECT_EQ(p.region, Region::kGreece);
  }
}

TEST(GeneratorTest, PrevalenceShapeMatchesTable3Ordering) {
  auto generated = Generate(RandomSetConfig(0.05));
  auto rows = data::ComputePrevalence(generated.dataset);
  auto frac = [&rows](AttributeId a) {
    return rows[static_cast<size_t>(a)].fraction;
  };
  // Last/First name near-universal; spouse/maiden rare — Table 3 ordering.
  EXPECT_GT(frac(AttributeId::kLastName), 0.9);
  EXPECT_GT(frac(AttributeId::kFirstName), 0.9);
  EXPECT_GT(frac(AttributeId::kGender), frac(AttributeId::kBirthYear));
  EXPECT_GT(frac(AttributeId::kFathersName),
            frac(AttributeId::kSpouseName));
  EXPECT_GT(frac(AttributeId::kSpouseName),
            frac(AttributeId::kMaidenName));
  EXPECT_GT(frac(AttributeId::kPermCity), frac(AttributeId::kDeathCity));
}

// ---------------------------------------------------------------------------
// TagOracle

TEST(TagOracleTest, GoldMatchesWithRichInfoGetYes) {
  data::Dataset ds;
  for (int i = 0; i < 2; ++i) {
    data::Record r;
    r.entity_id = 1;
    r.family_id = 1;
    r.Add(AttributeId::kFirstName, "Guido");
    r.Add(AttributeId::kLastName, "Foa");
    r.Add(AttributeId::kFathersName, "Donato");
    r.Add(AttributeId::kBirthYear, "1920");
    r.Add(AttributeId::kPermCity, "Torino");
    ds.Add(std::move(r));
  }
  TagOracleConfig config;
  config.hedge = 0.0;
  config.slip = 0.0;
  TagOracle oracle(&ds, config);
  EXPECT_EQ(oracle.Tag(0, 1), ml::ExpertTag::kYes);
}

TEST(TagOracleTest, SparsePairsAreMaybe) {
  data::Dataset ds;
  data::Record a;
  a.entity_id = 1;
  a.Add(AttributeId::kFirstName, "Guido");
  ds.Add(std::move(a));
  data::Record b;
  b.entity_id = 1;
  b.Add(AttributeId::kFirstName, "Guido");
  ds.Add(std::move(b));
  TagOracleConfig config;
  config.hedge = 0.0;
  config.slip = 0.0;
  TagOracle oracle(&ds, config);
  EXPECT_EQ(oracle.Tag(0, 1), ml::ExpertTag::kMaybe);
}

TEST(TagOracleTest, NonMatchesGetNoFamily) {
  data::Dataset ds;
  auto add = [&ds](int64_t entity, const char* fn) {
    data::Record r;
    r.entity_id = entity;
    r.family_id = 1;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, "Capelluto");
    r.Add(AttributeId::kFathersName, "Bohor");
    r.Add(AttributeId::kMothersName, "Zimbul");
    r.Add(AttributeId::kPermCity, "Rhodes");
    ds.Add(std::move(r));
  };
  add(1, "Elsa");
  add(2, "Giulia");
  TagOracleConfig config;
  config.hedge = 0.0;
  config.slip = 0.0;
  TagOracle oracle(&ds, config);
  // Siblings share everything but first names: a plausible near-miss.
  auto tag = oracle.Tag(0, 1);
  EXPECT_TRUE(tag == ml::ExpertTag::kProbablyNo ||
              tag == ml::ExpertTag::kMaybe);
}

TEST(TagOracleTest, ClearNonMatchesGetNo) {
  data::Dataset ds;
  auto add = [&ds](int64_t entity, int64_t family, const char* fn,
                   const char* ln) {
    data::Record r;
    r.entity_id = entity;
    r.family_id = family;
    r.Add(AttributeId::kFirstName, fn);
    r.Add(AttributeId::kLastName, ln);
    r.Add(AttributeId::kBirthYear, "1920");
    ds.Add(std::move(r));
  };
  add(1, 1, "Guido", "Foa");
  add(2, 2, "Mendel", "Kesler");
  TagOracleConfig config;
  config.hedge = 0.0;
  config.slip = 0.0;
  TagOracle oracle(&ds, config);
  EXPECT_EQ(oracle.Tag(0, 1), ml::ExpertTag::kNo);
}

}  // namespace
}  // namespace yver::synth
