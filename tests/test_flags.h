#ifndef YVER_TESTS_TEST_FLAGS_H_
#define YVER_TESTS_TEST_FLAGS_H_

namespace yver::testing {

/// Set by tests/test_main.cc when the test binary is invoked with
/// --update-golden: golden-file tests rewrite their expected outputs in
/// the source tree instead of comparing against them. Usage:
///   ./build/tests/yver_tests --gtest_filter='Golden*' --update-golden
extern bool update_golden;

}  // namespace yver::testing

#endif  // YVER_TESTS_TEST_FLAGS_H_
