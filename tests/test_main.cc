// Custom gtest main shared by every test binary: InitGoogleTest consumes
// the gtest flags, and whatever remains is scanned for repo-specific test
// flags (currently --update-golden, the golden-fixture escape hatch).

#include <cstring>

#include <gtest/gtest.h>

#include "test_flags.h"

namespace yver::testing {
bool update_golden = false;
}  // namespace yver::testing

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      yver::testing::update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
