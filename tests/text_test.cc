#include <string>

#include <gtest/gtest.h>

#include "text/jaccard.h"
#include "text/jaro_winkler.h"
#include "text/levenshtein.h"
#include "text/qgram.h"

namespace yver::text {
namespace {

// ---------------------------------------------------------------------------
// Levenshtein

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("Bella", "Della"), 1u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("foa", "foy"),
            LevenshteinDistance("foy", "foa"));
}

TEST(LevenshteinTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  double s = LevenshteinSimilarity("Guido", "Guida");
  EXPECT_GT(s, 0.7);
  EXPECT_LT(s, 1.0);
}

// ---------------------------------------------------------------------------
// Jaro / Jaro-Winkler

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
}

TEST(JaroTest, CompletelyDifferent) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, EmptyVsNonEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, ClassicMarthaMarhta) {
  // The canonical example: Jaro(MARTHA, MARHTA) = 0.944...
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
}

TEST(JaroTest, ClassicDwayneDuane) {
  EXPECT_NEAR(JaroSimilarity("dwayne", "duane"), 0.8222, 1e-3);
}

TEST(JaroWinklerTest, PrefixBoost) {
  double jaro = JaroSimilarity("dixon", "dicksonx");
  double jw = JaroWinklerSimilarity("dixon", "dicksonx");
  EXPECT_GT(jw, jaro);
  EXPECT_NEAR(jw, 0.8133, 1e-3);
}

TEST(JaroWinklerTest, Symmetry) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("kesler", "kessler"),
                   JaroWinklerSimilarity("kessler", "kesler"));
}

TEST(JaroWinklerTest, BoundedByOne) {
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
}

TEST(JaroWinklerTest, TransliterationVariantsScoreHigh) {
  EXPECT_GT(JaroWinklerSimilarity("szwarc", "shvarts"), 0.6);
  EXPECT_GT(JaroWinklerSimilarity("kaminski", "kaminsky"), 0.9);
}

// ---------------------------------------------------------------------------
// Q-grams

TEST(QGramTest, PaddedBigrams) {
  auto grams = ExtractQGrams("ab", 2);
  // "#ab#" -> {"#a", "ab", "b#"}
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#a");
  EXPECT_EQ(grams[1], "ab");
  EXPECT_EQ(grams[2], "b#");
}

TEST(QGramTest, UnigramsAreCharacters) {
  auto grams = ExtractQGrams("abc", 1);
  ASSERT_EQ(grams.size(), 3u);
}

TEST(QGramTest, NoPadShortString) {
  auto grams = ExtractQGramsNoPad("a", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "a");
}

TEST(QGramTest, ExtendedContainsWholeString) {
  auto keys = ExtractExtendedQGrams("abcd", 2, 0.8);
  bool has_whole = false;
  for (const auto& k : keys) {
    if (k == "abbccd") has_whole = true;  // concatenated bigrams
  }
  EXPECT_TRUE(has_whole);
}

// ---------------------------------------------------------------------------
// Jaccard

TEST(JaccardTest, IdsBasics) {
  EXPECT_DOUBLE_EQ(JaccardOfIds({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardOfIds({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOfIds({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardOfIds({1, 2}, {1, 2}), 1.0);
}

TEST(JaccardTest, IdsDeduplicates) {
  EXPECT_DOUBLE_EQ(JaccardOfIds({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(JaccardTest, SortedIdsMatchesUnsorted) {
  std::vector<uint32_t> a = {1, 5, 9};
  std::vector<uint32_t> b = {5, 9, 11};
  EXPECT_DOUBLE_EQ(JaccardOfSortedIds(a, b), JaccardOfIds(a, b));
}

TEST(JaccardTest, QGramIdentical) {
  EXPECT_DOUBLE_EQ(QGramJaccard("foa", "foa"), 1.0);
}

TEST(JaccardTest, QGramSimilarNames) {
  double s = QGramJaccard("foa", "foy");
  EXPECT_GT(s, 0.2);
  EXPECT_LT(s, 1.0);
}

TEST(JaccardTest, TokenJaccard) {
  EXPECT_DOUBLE_EQ(TokenJaccard("john harris", "john"), 0.5);
  EXPECT_DOUBLE_EQ(TokenJaccard("a b", "b a"), 1.0);
}

// ---------------------------------------------------------------------------
// Property sweeps: similarity functions stay in [0, 1], are symmetric and
// reflexive across a corpus of name pairs.

class SimilarityPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(SimilarityPropertyTest, RangeSymmetryReflexivity) {
  auto [a, b] = GetParam();
  for (auto fn : {+[](const std::string& x, const std::string& y) {
                    return JaroWinklerSimilarity(x, y);
                  },
                  +[](const std::string& x, const std::string& y) {
                    return LevenshteinSimilarity(x, y);
                  },
                  +[](const std::string& x, const std::string& y) {
                    return QGramJaccard(x, y);
                  }}) {
    double s_ab = fn(a, b);
    double s_ba = fn(b, a);
    EXPECT_GE(s_ab, 0.0);
    EXPECT_LE(s_ab, 1.0);
    EXPECT_DOUBLE_EQ(s_ab, s_ba);
    EXPECT_DOUBLE_EQ(fn(a, a), 1.0);
    EXPECT_DOUBLE_EQ(fn(b, b), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamePairs, SimilarityPropertyTest,
    ::testing::Values(std::make_pair("guido", "guido"),
                      std::make_pair("foa", "foy"),
                      std::make_pair("kesler", "kessler"),
                      std::make_pair("avraham", "avrum"),
                      std::make_pair("szwarc", "shvarts"),
                      std::make_pair("bella", "della"),
                      std::make_pair("capelluto", "capeluto"),
                      std::make_pair("x", "yz"),
                      std::make_pair("torino", "turin")));

}  // namespace
}  // namespace yver::text
