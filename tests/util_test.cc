#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace yver::util {
namespace {

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardLowIndices) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
}

TEST(RngTest, PickWeightedRespectsZeroWeight) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.PickWeighted(weights), 1u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ---------------------------------------------------------------------------
// String utilities

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(ToLower(""), "");
  EXPECT_EQ(ToLower("123-ABC"), "123-abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  foo \t bar\nbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ";"), "a;b;c");
  EXPECT_EQ(Join({}, ";"), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("kaminski", "ski"));
  EXPECT_FALSE(EndsWith("ski", "kaminski"));
}

// ---------------------------------------------------------------------------
// CSV

TEST(CsvTest, SimpleRoundTrip) {
  std::vector<std::string> row = {"a", "b", "c"};
  auto parsed = ParseCsv(FormatCsvRow(row) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], row);
}

TEST(CsvTest, QuotedFieldWithCommaAndQuote) {
  std::vector<std::string> row = {"a,b", "say \"hi\"", ""};
  auto parsed = ParseCsv(FormatCsvRow(row) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], row);
}

TEST(CsvTest, EmbeddedNewline) {
  std::vector<std::string> row = {"line1\nline2", "x"};
  auto parsed = ParseCsv(FormatCsvRow(row) + "\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], row);
}

TEST(CsvTest, CrLfHandling) {
  auto parsed = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0][1], "b");
  EXPECT_EQ(parsed[1][0], "c");
}

TEST(CsvTest, LastLineWithoutNewline) {
  auto parsed = ParseCsv("a,b\nc,d");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[1][1], "d");
}

TEST(CsvTest, EmptyInput) { EXPECT_TRUE(ParseCsv("").empty()); }

TEST(CsvTest, BareCrIsFieldDataNotTerminator) {
  // Regression: a bare \r mid-field in unquoted data used to be swallowed
  // ("a\rb" parsed as "ab"). Only CRLF terminates a record.
  auto parsed = ParseCsv("a\rb,c\n");
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].size(), 2u);
  EXPECT_EQ(parsed[0][0], "a\rb");
  EXPECT_EQ(parsed[0][1], "c");
}

TEST(CsvTest, BareCrAtEndOfInputPreserved) {
  auto parsed = ParseCsv("a,b\r");
  ASSERT_EQ(parsed.size(), 1u);
  ASSERT_EQ(parsed[0].size(), 2u);
  EXPECT_EQ(parsed[0][1], "b\r");
}

TEST(CsvTest, CrLfInsideQuotedFieldPreserved) {
  std::vector<std::string> row = {"a\r\nb", "c\rd"};
  auto parsed = ParseCsv(FormatCsvRow(row) + "\r\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], row);
}

// Property: any field content pushed through FormatCsvRow then
// ParseCsvRecord must come back unchanged, including CR, LF, quote, and
// comma characters in every position.
TEST(CsvTest, FormatParseRoundTripIsIdentityOnRandomRows) {
  const char alphabet[] = {'a', 'b', ',', '"', '\r', '\n', ' ', 'z'};
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::string> row(
        1 + static_cast<size_t>(rng.UniformInt(0, 4)));
    for (auto& field : row) {
      size_t len = static_cast<size_t>(rng.UniformInt(0, 8));
      for (size_t i = 0; i < len; ++i) {
        field.push_back(alphabet[rng.UniformInt(0, 7)]);
      }
    }
    std::string data = FormatCsvRow(row) + "\n";
    size_t pos = 0;
    auto parsed = ParseCsvRecord(data, &pos);
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    EXPECT_EQ(*parsed, row) << "trial " << trial << " data: " << data;
    EXPECT_EQ(pos, data.size()) << "trial " << trial;
  }
}

// Multi-row round trip through the full-document parser, with fields that
// embed record terminators.
TEST(CsvTest, MultiRowRoundTripWithEmbeddedTerminators) {
  std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma"},
      {"with\rcr", "with\r\ncrlf", "with\"quote"},
      {"", "trailing\n"},
  };
  std::string data;
  for (const auto& row : rows) data += FormatCsvRow(row) + "\n";
  auto parsed = ParseCsv(data);
  EXPECT_EQ(parsed, rows);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(),
                   [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ChunkedIndexedCoversRangeWithAnnouncedChunks) {
  ThreadPool pool(3);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
    size_t num_chunks = pool.NumChunks(n);
    std::vector<std::atomic<int>> hits(n);
    std::vector<std::atomic<int>> chunk_sizes(std::max<size_t>(num_chunks, 1));
    size_t max_chunk_seen = 0;
    std::mutex mu;
    pool.ParallelForChunkedIndexed(
        n, [&](size_t chunk, size_t begin, size_t end) {
          ASSERT_LT(chunk, num_chunks);
          chunk_sizes[chunk].fetch_add(static_cast<int>(end - begin));
          for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          max_chunk_seen = std::max(max_chunk_seen, chunk);
        });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    if (n > 0) {
      EXPECT_EQ(max_chunk_seen + 1, num_chunks) << "n=" << n;
      for (size_t c = 0; c < num_chunks; ++c) {
        EXPECT_GT(chunk_sizes[c].load(), 0) << "empty chunk " << c;
      }
    } else {
      EXPECT_EQ(num_chunks, 0u);
    }
  }
}

TEST(ThreadPoolTest, ThrowingTaskIsRethrownFromWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("task boom"); });
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // All sibling tasks still ran — the exception is captured, not a worker
  // death — and the pool stays fully usable afterwards.
  EXPECT_EQ(counter.load(), 16);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();  // no stale exception: rethrow cleared it
  EXPECT_EQ(counter.load(), 17);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsKept) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The remaining seven were dropped; a clean batch waits cleanly.
  pool.Submit([] {});
  pool.Wait();
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](size_t i) {
                                  if (i == 33) throw std::logic_error("i33");
                                }),
               std::logic_error);
  // Pool unharmed: the next parallel loop completes normally.
  std::atomic<int> hits{0};
  pool.ParallelFor(64, [&hits](size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// ---------------------------------------------------------------------------
// Timer

TEST(TimerTest, MonotonicNonNegative) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  double first = t.ElapsedSeconds();
  EXPECT_GE(t.ElapsedSeconds(), first);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace yver::util
