// Tests of the durable-ingest layer (DESIGN.md §14): WriteAheadLog
// framing, group commit, segment rotation/retirement, and the recovery
// contract — acked records always survive, unacked records never
// reappear, torn tails are truncated, mid-file corruption is a typed
// refusal. The kill-and-restart process-level harness lives in
// scripts/check.sh; these are the in-process property tests behind it.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "core/ranked_resolution.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "serve/ingest.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "serve/wal.h"
#include "util/fault_injector.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::FaultConfig;
using util::FaultInjector;
using util::FaultPoint;
using util::StatusCode;

class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    FaultInjector::Global().Arm(config);
  }
  ~ScopedFaultInjection() { FaultInjector::Global().Disarm(); }
};

data::Record MakeReport(uint64_t book_id, const std::string& first,
                        const std::string& last, const std::string& town) {
  data::Record r;
  r.book_id = book_id;
  r.source_id = static_cast<uint32_t>(book_id % 3);
  r.Add(data::AttributeId::kFirstName, first);
  r.Add(data::AttributeId::kLastName, last);
  r.Add(data::AttributeId::kBirthCity, town);
  return r;
}

data::Dataset MakeSeedCorpus() {
  data::Dataset dataset;
  dataset.Add(MakeReport(1, "chaim", "levi", "vilna"));
  dataset.Add(MakeReport(2, "chaim", "levi", "vilna"));
  dataset.Add(MakeReport(3, "sara", "cohen", "lodz"));
  dataset.Add(MakeReport(4, "dvora", "katz", "warsaw"));
  return dataset;
}

// Empties (and removes) `name` under the test temp dir so every test run
// starts from a log that does not exist yet; WriteAheadLog::Open creates
// it.
std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* ent = ::readdir(d)) {
      std::string n = ent->d_name;
      if (n == "." || n == "..") continue;
      ::unlink((dir + "/" + n).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Segment files in the directory, oldest first (the name sorts by first
// sequence).
std::vector<std::string> SegmentPaths(const std::string& dir) {
  std::vector<std::string> paths;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return paths;
  while (struct dirent* ent = ::readdir(d)) {
    std::string n = ent->d_name;
    if (n.size() > 8 && n.compare(0, 4, "wal-") == 0 &&
        n.compare(n.size() - 4, 4, ".yvw") == 0) {
      paths.push_back(dir + "/" + n);
    }
  }
  ::closedir(d);
  std::sort(paths.begin(), paths.end());
  return paths;
}

uint32_t ReadU32At(const std::string& bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

// End offset of every record in a segment file, in order: records start
// after the 16-byte header and are length-prefixed, so the boundaries can
// be walked without decoding payloads.
std::vector<size_t> RecordEnds(const std::string& bytes) {
  constexpr size_t kHeader = 16;
  constexpr size_t kOverhead = 20;  // length + sequence + digest
  std::vector<size_t> ends;
  size_t off = kHeader;
  while (off + kOverhead <= bytes.size()) {
    size_t end = off + kOverhead + ReadU32At(bytes, off);
    if (end > bytes.size()) break;
    ends.push_back(end);
    off = end;
  }
  return ends;
}

util::StatusOr<std::unique_ptr<WriteAheadLog>> OpenWal(
    const std::string& dir, std::vector<WalRecoveredRecord>* recovered,
    size_t segment_bytes = 4u << 20) {
  WalOptions options;
  options.segment_bytes = segment_bytes;
  return WriteAheadLog::Open(dir, options, recovered);
}

// ---------------------------------------------------------------------------
// WriteAheadLog: append / recover round trips

TEST(WalTest, AppendAndReopenRoundTrip) {
  std::string dir = FreshDir("wal_roundtrip");
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE(recovered.empty());
  EXPECT_EQ((*wal)->durable_sequence(), 0u);

  for (uint64_t i = 0; i < 5; ++i) {
    auto seq = (*wal)->Append(
        MakeReport(700 + i, "name" + std::to_string(i), "x", "town"));
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, i + 1);
  }
  EXPECT_EQ((*wal)->durable_sequence(), 5u);
  EXPECT_EQ((*wal)->stats().appends, 5u);
  wal->reset();  // close the fd; simulate a clean restart

  auto reopened = OpenWal(dir, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), 5u);
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].sequence, i + 1);
    EXPECT_EQ(recovered[i].record.book_id, 700 + i);
    auto names = recovered[i].record.Values(data::AttributeId::kFirstName);
    ASSERT_NE(names.begin(), names.end());
    EXPECT_EQ(*names.begin(), "name" + std::to_string(i));
  }
  auto stats = (*reopened)->stats();
  EXPECT_EQ(stats.recovered_records, 5u);
  EXPECT_EQ(stats.durable_sequence, 5u);
  EXPECT_EQ(stats.truncated_tail_bytes, 0u);

  // The sequence counter survives the restart.
  auto next = (*reopened)->Append(MakeReport(800, "after", "restart", "z"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 6u);
}

TEST(WalTest, ConcurrentAppendersGroupCommit) {
  std::string dir = FreshDir("wal_group_commit");
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::mutex mu;
  std::vector<std::pair<uint64_t, uint64_t>> acked;  // (sequence, book_id)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t book_id = 1000 + static_cast<uint64_t>(t) * kPerThread + i;
        auto seq = (*wal)->Append(MakeReport(book_id, "c", "d", "e"));
        ASSERT_TRUE(seq.ok()) << seq.status().ToString();
        std::lock_guard<std::mutex> lock(mu);
        acked.emplace_back(*seq, book_id);
      }
    });
  }
  for (auto& th : threads) th.join();

  constexpr uint64_t kTotal = kThreads * kPerThread;
  auto stats = (*wal)->stats();
  EXPECT_EQ(stats.appends, kTotal);
  EXPECT_EQ(stats.durable_sequence, kTotal);
  // Group commit: never more fsyncs than appends; with 8 contending
  // appenders batches almost always coalesce, but a fully serialized
  // schedule (one fsync per append) is legal, so only the bound is hard.
  EXPECT_LE(stats.fsyncs, kTotal);
  EXPECT_GT(stats.fsyncs, 0u);

  // Sequences are exactly 1..N, each acked once.
  std::sort(acked.begin(), acked.end());
  ASSERT_EQ(acked.size(), kTotal);
  for (uint64_t s = 0; s < kTotal; ++s) EXPECT_EQ(acked[s].first, s + 1);

  wal->reset();
  auto reopened = OpenWal(dir, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), kTotal);
  for (uint64_t s = 0; s < kTotal; ++s) {
    EXPECT_EQ(recovered[s].sequence, s + 1);
    EXPECT_EQ(recovered[s].record.book_id, acked[s].second)
        << "recovered record at sequence " << s + 1
        << " is not the one acked under it";
  }
}

// ---------------------------------------------------------------------------
// Recovery property tests: torn tails and corruption

// The torn-tail property (the crash-mid-write contract): for EVERY
// truncation point of the segment file, recovery yields exactly the
// records that fit wholly before the cut — a strict prefix of what was
// acked, never an error, never an invented record.
TEST(WalTest, TornTailTruncatedAtEveryOffset) {
  std::string dir = FreshDir("wal_torn_build");
  std::vector<WalRecoveredRecord> recovered;
  {
    auto wal = OpenWal(dir, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(MakeReport(900 + i, "torn" + std::to_string(i),
                                    "tail", "test"))
              .ok());
    }
  }
  auto segments = SegmentPaths(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string original = ReadFileBytes(segments.front());
  std::string segment_name =
      segments.front().substr(segments.front().find_last_of('/') + 1);
  std::vector<size_t> ends = RecordEnds(original);
  ASSERT_EQ(ends.size(), 4u);
  ASSERT_EQ(ends.back(), original.size());

  std::string scratch = FreshDir("wal_torn_scratch");
  for (size_t cut = 0; cut <= original.size(); ++cut) {
    SCOPED_TRACE("truncated at byte " + std::to_string(cut));
    FreshDir("wal_torn_scratch");
    ASSERT_EQ(::mkdir(scratch.c_str(), 0755), 0);
    WriteFileBytes(scratch + "/" + segment_name, original.substr(0, cut));

    auto wal = OpenWal(scratch, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    size_t expected = 0;
    while (expected < ends.size() && ends[expected] <= cut) ++expected;
    ASSERT_EQ(recovered.size(), expected);
    for (size_t i = 0; i < expected; ++i) {
      EXPECT_EQ(recovered[i].sequence, i + 1);
      EXPECT_EQ(recovered[i].record.book_id, 900 + i);
    }
    auto stats = (*wal)->stats();
    EXPECT_EQ(stats.durable_sequence, expected);
    size_t valid_end = expected > 0 ? ends[expected - 1] : 16;
    EXPECT_EQ(stats.truncated_tail_bytes,
              cut > valid_end ? cut - valid_end : 0);

    // The log is open for business again: the next append continues the
    // sequence right after the surviving prefix.
    auto seq = (*wal)->Append(MakeReport(999, "fresh", "append", "ok"));
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(*seq, expected + 1);
  }
}

// Bit-flip fuzz: no single-bit corruption anywhere in the file can make
// recovery invent or reorder a record. Either Open refuses typed
// (DATA_LOSS) or it returns a strict prefix of the acked stream.
TEST(WalTest, BitFlipsNeverInventRecords) {
  std::string dir = FreshDir("wal_flip_build");
  std::vector<WalRecoveredRecord> recovered;
  {
    auto wal = OpenWal(dir, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*wal)->Append(MakeReport(300 + i, "flip" + std::to_string(i),
                                    "bits", "fuzz"))
              .ok());
    }
  }
  auto segments = SegmentPaths(dir);
  ASSERT_EQ(segments.size(), 1u);
  std::string original = ReadFileBytes(segments.front());
  std::string segment_name =
      segments.front().substr(segments.front().find_last_of('/') + 1);

  std::string scratch = FreshDir("wal_flip_scratch");
  for (size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE("bit " + std::to_string(bit) + " of byte " +
                   std::to_string(byte));
      FreshDir("wal_flip_scratch");
      ASSERT_EQ(::mkdir(scratch.c_str(), 0755), 0);
      std::string mutated = original;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      WriteFileBytes(scratch + "/" + segment_name, mutated);

      auto wal = OpenWal(scratch, &recovered);
      if (!wal.ok()) {
        EXPECT_EQ(wal.status().code(), StatusCode::kDataLoss)
            << wal.status().ToString();
        continue;
      }
      ASSERT_LE(recovered.size(), 3u);
      for (size_t i = 0; i < recovered.size(); ++i) {
        EXPECT_EQ(recovered[i].sequence, i + 1);
        EXPECT_EQ(recovered[i].record.book_id, 300 + i)
            << "recovery must only ever return a prefix of what was acked";
      }
    }
  }
}

// The same damage that recovery tolerates at the tail is a typed refusal
// when acked records come after it: corruption in a non-final segment
// means acked data is gone, and silently dropping it would break the
// durability contract.
TEST(WalTest, MidFileCorruptionInNonFinalSegmentIsDataLoss) {
  std::string dir = FreshDir("wal_midfile");
  std::vector<WalRecoveredRecord> recovered;
  {
    // segment_bytes below the minimum clamps to one-record segments.
    auto wal = OpenWal(dir, &recovered, /*segment_bytes=*/1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wal)->Append(MakeReport(400 + i, "mid", "file", "x")).ok());
    }
  }
  auto segments = SegmentPaths(dir);
  ASSERT_EQ(segments.size(), 4u);
  std::string victim = segments[1];  // non-final, holds acked sequence 2
  std::string original = ReadFileBytes(victim);

  // Checksum damage: flip the record's digest byte.
  std::string mutated = original;
  mutated.back() = static_cast<char>(mutated.back() ^ 0x01);
  WriteFileBytes(victim, mutated);
  auto corrupt = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss);

  // Truncation damage: the segment lost its tail but is not the final one.
  WriteFileBytes(victim, original.substr(0, original.size() / 2));
  auto truncated = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kDataLoss);

  // A torn header before the final segment is equally refused.
  WriteFileBytes(victim, original.substr(0, 10));
  auto torn_header = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_FALSE(torn_header.ok());
  EXPECT_EQ(torn_header.status().code(), StatusCode::kDataLoss);

  // Restoring the bytes restores the log: nothing was mutated in place.
  WriteFileBytes(victim, original);
  auto healed = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(recovered.size(), 4u);
}

// ---------------------------------------------------------------------------
// Rotation and retirement

TEST(WalTest, RotationAndRetireKeepUncoveredSuffix) {
  std::string dir = FreshDir("wal_retire");
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  for (uint64_t i = 0; i < 10; ++i) {
    auto seq = (*wal)->Append(MakeReport(600 + i, "rot", "ate", "y"));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, i + 1);
  }
  auto stats = (*wal)->stats();
  EXPECT_EQ(stats.segments, 10u);
  EXPECT_EQ(stats.rotations, 9u);

  // Retiring through sequence 5 (say, a snapshot covers 1..5) removes the
  // segments holding only covered records.
  ASSERT_TRUE((*wal)->Retire(5).ok());
  EXPECT_EQ((*wal)->stats().segments, 5u);
  EXPECT_EQ(SegmentPaths(dir).size(), 5u);
  wal->reset();

  auto reopened = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), 5u);
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].sequence, 6 + i);
    EXPECT_EQ(recovered[i].record.book_id, 605 + i);
  }
  auto seq = (*reopened)->Append(MakeReport(610, "post", "retire", "z"));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 11u);

  // Retiring past the end keeps the newest segment: it carries the
  // sequence counter across restarts.
  ASSERT_TRUE((*reopened)->Retire(100).ok());
  EXPECT_EQ((*reopened)->stats().segments, 1u);
  reopened->reset();
  auto once_more = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(once_more.ok()) << once_more.status().ToString();
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered.front().sequence, 11u);
  EXPECT_EQ(recovered.front().record.book_id, 610u);
}

// ---------------------------------------------------------------------------
// Fault injection: the disk always equals the acked records

// Probabilistic chaos at serve.wal.append and serve.wal.fsync: whatever
// mix of appends fail, the bytes on disk after a restart are EXACTLY the
// acked records — a failed append never resurfaces, an acked one never
// disappears, and sequences stay contiguous because failed appends give
// their sequence back.
TEST(WalTest, AppendFaultChaosKeepsDiskEqualToAcks) {
  std::string dir = FreshDir("wal_chaos");
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  std::vector<uint64_t> acked_books;
  size_t failures = 0;
  {
    FaultConfig config;
    config.seed = 29;
    config.io_error_probability = 0.2;
    config.short_read_probability = 0.1;
    ScopedFaultInjection arm(config);
    for (uint64_t i = 0; i < 200; ++i) {
      auto seq = (*wal)->Append(MakeReport(2000 + i, "chaos", "run", "q"));
      if (seq.ok()) {
        EXPECT_EQ(*seq, acked_books.size() + 1)
            << "failed appends must give their sequence back";
        acked_books.push_back(2000 + i);
      } else {
        ++failures;
        EXPECT_TRUE(seq.status().code() == StatusCode::kUnavailable ||
                    seq.status().code() == StatusCode::kDataLoss)
            << seq.status().ToString();
      }
    }
    // The mix must have exercised both injection points, including the
    // group-commit fsync (reachable only when the append-point roll
    // spares the record).
    EXPECT_GT(FaultInjector::Global().injections(FaultPoint::kWalAppend), 0u);
    EXPECT_GT(FaultInjector::Global().injections(FaultPoint::kWalFsync), 0u);
  }
  ASSERT_GT(failures, 0u);
  ASSERT_GT(acked_books.size(), 0u);
  EXPECT_EQ((*wal)->durable_sequence(), acked_books.size());
  wal->reset();

  auto reopened = OpenWal(dir, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), acked_books.size());
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].sequence, i + 1);
    EXPECT_EQ(recovered[i].record.book_id, acked_books[i]);
  }
}

TEST(WalTest, ReplayFaultSurfacesTyped) {
  std::string dir = FreshDir("wal_replay_fault");
  std::vector<WalRecoveredRecord> recovered;
  {
    auto wal = OpenWal(dir, &recovered);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE((*wal)->Append(MakeReport(100 + i, "re", "play", "w")).ok());
    }
  }
  {
    FaultConfig config;
    config.seed = 7;
    config.io_error_probability = 1.0;
    config.max_injections = 1;
    ScopedFaultInjection arm(config);
    auto failed = OpenWal(dir, &recovered);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
    EXPECT_GT(FaultInjector::Global().injections(FaultPoint::kWalReplay), 0u);
  }
  // The failure was the read path, not the bytes: a clean retry recovers.
  auto wal = OpenWal(dir, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(recovered.size(), 3u);
}

// ---------------------------------------------------------------------------
// WAL-backed LiveIndexBuilder: durable acks and deterministic replay

struct LiveServing {
  std::shared_ptr<ResolutionService> service;
  std::shared_ptr<LiveIndexBuilder> builder;
};

LiveServing MakeWalServing(WriteAheadLog* wal, IngestOptions options = {}) {
  options.wal = wal;
  data::Dataset seed = MakeSeedCorpus();
  options.wal_base_records = seed.size();
  auto resolver = std::make_unique<core::IncrementalResolver>(
      seed, core::RankedResolution(), ml::AdTree());
  auto index = std::make_shared<const ResolutionIndex>(
      core::RankedResolution(), seed.size());
  auto service = std::make_shared<ResolutionService>(index);
  auto builder = std::make_shared<LiveIndexBuilder>(
      service, std::move(resolver), options);
  return {std::move(service), std::move(builder)};
}

// The acceptance invariant of DESIGN.md §14: under fault chaos across the
// append path, (a) every acked Submit survives the restart and nothing
// else does, and (b) replaying the WAL through a fresh resolver rebuilds
// an index with the exact checksum the live service was serving — the
// recovered index is a pure function of (seed corpus, acked prefix).
TEST(WalIngestTest, AckedRecordsSurviveAndReplayDeterministically) {
  std::string dir = FreshDir("wal_ingest_chaos");
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  std::vector<std::pair<data::RecordIdx, uint64_t>> acked;  // (idx, book_id)
  uint64_t served_checksum = 0;
  {
    LiveServing live = MakeWalServing(wal->get());
    EXPECT_TRUE(live.builder->durable());
    {
      FaultConfig config;
      config.seed = 41;
      config.io_error_probability = 0.25;
      ScopedFaultInjection arm(config);
      for (uint64_t i = 0; i < 120; ++i) {
        auto idx = live.builder->Submit(
            MakeReport(3000 + i, "golda" + std::to_string(i % 7), "meir",
                       i % 2 ? "kiev" : "pinsk"));
        if (idx.ok()) acked.emplace_back(*idx, 3000 + i);
      }
    }
    ASSERT_GT(acked.size(), 0u);
    ASSERT_LT(acked.size(), 120u) << "chaos run unexpectedly fault-free";
    // Corpus indices are contiguous from the seed: a failed Submit takes
    // no slot (its WAL sequence was given back, so the wire-visible
    // idx<->sequence correspondence never drifts).
    for (size_t i = 0; i < acked.size(); ++i) {
      EXPECT_EQ(acked[i].first, 4 + i);
      EXPECT_EQ(live.builder->WalSequenceFor(acked[i].first), i + 1);
    }
    ASSERT_TRUE(live.builder->WaitForIdle().ok());
    served_checksum = live.service->PinIndex()->Checksum();
    live.builder->Stop();
  }
  EXPECT_EQ((*wal)->durable_sequence(), acked.size());
  wal->reset();

  // Restart: recovery returns exactly the acked records, in ack order.
  auto reopened = OpenWal(dir, &recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovered.size(), acked.size());
  for (size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i].sequence, i + 1);
    EXPECT_EQ(recovered[i].record.book_id, acked[i].second);
  }

  // Replay through a fresh resolver reproduces the served index bit for
  // bit.
  auto resolver = std::make_unique<core::IncrementalResolver>(
      MakeSeedCorpus(), core::RankedResolution(), ml::AdTree());
  for (const auto& rec : recovered) resolver->AddRecord(rec.record);
  ResolutionIndex rebuilt(resolver->Resolution(), resolver->dataset().size());
  EXPECT_EQ(rebuilt.num_records(), 4 + acked.size());
  EXPECT_EQ(rebuilt.Checksum(), served_checksum)
      << "replayed index diverged from the one served before the restart";
}

// Snapshots bound replay: every snapshot_every applied records the
// builder persists the appended suffix crash-atomically and retires the
// covered WAL segments; a restart loads the snapshot, skips the covered
// sequences, and replays only the suffix — landing on the same index.
TEST(WalIngestTest, SnapshotRetiresSegmentsAndRestartReplays) {
  std::string dir = FreshDir("wal_ingest_snapshot");
  std::string snapshot_path = dir + "/snapshot-appends.csv";
  std::vector<WalRecoveredRecord> recovered;
  auto wal = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  uint64_t served_checksum = 0;
  {
    IngestOptions options;
    options.snapshot_every = 8;
    options.snapshot_path = snapshot_path;
    LiveServing live = MakeWalServing(wal->get(), options);
    for (uint64_t i = 0; i < 20; ++i) {
      auto idx = live.builder->Submit(
          MakeReport(5000 + i, "snap" + std::to_string(i), "shot", "lublin"));
      ASSERT_TRUE(idx.ok()) << idx.status().ToString();
      EXPECT_EQ(*idx, 4 + i);
    }
    ASSERT_TRUE(live.builder->WaitForIdle().ok());
    auto stats = live.builder->stats();
    EXPECT_EQ(stats.applied, 20u);
    EXPECT_GE(stats.snapshots, 2u);
    EXPECT_EQ(stats.snapshot_failures, 0u);
    served_checksum = live.service->PinIndex()->Checksum();
    live.builder->Stop();
  }
  // The snapshot exists and the segments it covers are gone (20 one-record
  // segments were written; at most the post-snapshot suffix plus the
  // always-kept newest segment remain).
  EXPECT_EQ(::access(snapshot_path.c_str(), F_OK), 0);
  EXPECT_LE((*wal)->stats().segments, 6u);
  wal->reset();

  // Restart exactly the way `yver_cli serve --live --wal-dir` does: load
  // the snapshot, replay WAL records past it, rebuild.
  auto snapshot = data::LoadDatasetCsvLenient(snapshot_path);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot->size(), 16u);  // two snapshots of 8 appends each
  auto resolver = std::make_unique<core::IncrementalResolver>(
      MakeSeedCorpus(), core::RankedResolution(), ml::AdTree());
  for (const auto& rec : snapshot->records()) resolver->AddRecord(rec);

  auto reopened = OpenWal(dir, &recovered, /*segment_bytes=*/1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_FALSE(recovered.empty());
  size_t replayed = 0;
  for (const auto& rec : recovered) {
    if (rec.sequence <= snapshot->size()) continue;  // covered by snapshot
    resolver->AddRecord(rec.record);
    ++replayed;
  }
  EXPECT_EQ(replayed, 4u);
  ASSERT_EQ(resolver->dataset().size(), 24u);
  ResolutionIndex rebuilt(resolver->Resolution(), resolver->dataset().size());
  EXPECT_EQ(rebuilt.Checksum(), served_checksum)
      << "snapshot + suffix replay diverged from the served index";
}

}  // namespace
}  // namespace yver::serve
