// Property tests of the serve::wire codec (DESIGN.md §12): encode ->
// extract -> decode -> re-encode must be byte-identical for arbitrary
// queries and results; truncated, bit-flipped, or version-skewed bytes
// must produce typed util::Status errors — never a crash or over-read.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "serve/net/replay.h"
#include "serve/query.h"
#include "serve/wire.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::StatusCode;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

Query RandomQuery(util::Rng& rng) {
  Query query;
  query.record = static_cast<data::RecordIdx>(rng.Next() & 0xffffffff);
  query.certainty = rng.UniformDouble() * 2 - 1;
  query.k = static_cast<size_t>(rng.UniformInt(0, 100));
  query.granularity =
      rng.Bernoulli(0.5) ? Granularity::kEntity : Granularity::kMatches;
  return query;
}

QueryResult RandomResult(util::Rng& rng) {
  QueryResult result;
  result.query = RandomQuery(rng);
  result.degraded = rng.Bernoulli(0.3);
  size_t matches = static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t i = 0; i < matches; ++i) {
    core::RankedMatch m;
    auto a = static_cast<data::RecordIdx>(rng.UniformInt(0, 1000));
    auto b = static_cast<data::RecordIdx>(rng.UniformInt(1001, 2000));
    m.pair = data::RecordPair(a, b);
    m.confidence = rng.UniformDouble();
    m.block_score = rng.UniformDouble();
    result.matches.push_back(m);
  }
  size_t entity = static_cast<size_t>(rng.UniformInt(0, 30));
  for (size_t i = 0; i < entity; ++i) {
    result.entity.push_back(
        static_cast<data::RecordIdx>(rng.UniformInt(0, 5000)));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(WireCodecTest, QueryRoundTripIsByteIdentical) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Query query = RandomQuery(rng);
    double deadline_ms = rng.Bernoulli(0.5) ? rng.UniformDouble() * 100 : 0;
    std::string bytes;
    wire::EncodeQuery(query, deadline_ms, &bytes);

    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, bytes.size());
    auto decoded = wire::DecodeQuery(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->query, query);  // semantic fields
    EXPECT_EQ(decoded->deadline_ms, deadline_ms);
    // A wire deadline materializes into a real Deadline at decode time.
    EXPECT_EQ(decoded->query.deadline.is_infinite(), deadline_ms == 0);

    std::string again;
    wire::EncodeQuery(decoded->query, decoded->deadline_ms, &again);
    EXPECT_EQ(bytes, again);
  }
}

TEST(WireCodecTest, ResultRoundTripIsByteIdentical) {
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    QueryResult result = RandomResult(rng);
    std::string bytes;
    wire::EncodeResult(result, &bytes);

    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, bytes.size());
    ASSERT_EQ(frame.type, wire::FrameType::kResult);
    auto decoded = wire::DecodeResult(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->degraded, result.degraded);
    EXPECT_EQ(decoded->entity, result.entity);
    ASSERT_EQ(decoded->matches.size(), result.matches.size());

    std::string again;
    wire::EncodeResult(*decoded, &again);
    EXPECT_EQ(bytes, again);
  }
}

TEST(WireCodecTest, FromCacheIsNotOnTheWire) {
  util::Rng rng(13);
  QueryResult result = RandomResult(rng);
  result.from_cache = false;
  std::string cold;
  wire::EncodeResult(result, &cold);
  result.from_cache = true;
  std::string warm;
  wire::EncodeResult(result, &warm);
  // The determinism contract: cache state never changes response bytes.
  EXPECT_EQ(cold, warm);
}

TEST(WireCodecTest, ErrorRoundTripPreservesCodeAndMessage) {
  const util::Status statuses[] = {
      util::Status::InvalidArgument("certainty is NaN"),
      util::Status::NotFound("no such record"),
      util::Status::OutOfRange("record 999 beyond corpus"),
      util::Status::DataLoss("torn read"),
      util::Status::Internal("invariant"),
      util::Status::DeadlineExceeded("budget spent"),
      util::Status::ResourceExhausted("shed"),
      util::Status::Unavailable("try again"),
  };
  for (const util::Status& status : statuses) {
    std::string bytes;
    wire::EncodeResult(status, &bytes);
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(frame.type, wire::FrameType::kError);
    auto decoded = wire::DecodeResult(frame);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), status.code());
    EXPECT_EQ(decoded.status().message(), status.message());
  }
}

TEST(WireCodecTest, DoubleBitPatternsSurviveExactly) {
  // NaN certainty must travel bit-exactly: the server rejects it with the
  // same typed error the in-process API gives, which requires it to arrive
  // intact rather than be mangled by a lossy text encoding.
  Query query;
  query.certainty = std::numeric_limits<double>::quiet_NaN();
  std::string bytes;
  wire::EncodeQuery(query, 0, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(decoded->query.certainty),
            std::bit_cast<uint64_t>(query.certainty));
}

TEST(WireCodecTest, InfoRoundTrip) {
  wire::ServerInfo info;
  info.num_records = 123;
  info.num_matches = 456;
  info.checksum = 0xdeadbeefcafef00dULL;
  info.metrics.queries = 9;
  info.metrics.errors = 2;
  info.metrics.cache_hits = 3;
  info.metrics.cache_misses = 6;
  info.metrics.shed = 1;
  info.metrics.deadline_exceeded = 1;
  info.metrics.degraded = 1;
  info.metrics.total_latency_ms = 2.5;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 0);
  info.metrics.latency_histogram_ns[20] = 9;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_records, info.num_records);
  EXPECT_EQ(decoded->num_matches, info.num_matches);
  EXPECT_EQ(decoded->checksum, info.checksum);
  EXPECT_EQ(decoded->metrics.queries, info.metrics.queries);
  EXPECT_EQ(decoded->metrics.latency_histogram_ns,
            info.metrics.latency_histogram_ns);
}

// ---------------------------------------------------------------------------
// Malformed input: typed errors, never crashes

TEST(WireCodecTest, TruncatedPrefixesAreIncompleteNeverError) {
  util::Rng rng(17);
  Query query = RandomQuery(rng);
  std::string bytes;
  wire::EncodeQuery(query, 5.0, &bytes);
  // Every strict prefix is either "incomplete, read more" (consumed == 0)
  // — a partial read is not an error — and never a crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(std::string_view(bytes).substr(0, len),
                                       &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << len;
    EXPECT_EQ(*consumed, 0u) << "prefix " << len;
  }
}

TEST(WireCodecTest, TruncatedPayloadIsTypedError) {
  // A frame whose header promises more payload than the type needs, or a
  // payload cut short relative to its own counts, must fail typed.
  util::Rng rng(19);
  QueryResult result = RandomResult(rng);
  std::string bytes;
  wire::EncodeResult(result, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    wire::Frame shorter = frame;
    shorter.payload.resize(cut);
    auto decoded = wire::DecodeResult(shorter);
    ASSERT_FALSE(decoded.ok()) << "cut " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST(WireCodecTest, BitFlipsNeverCrashTheDecoder) {
  util::Rng rng(23);
  Query query = RandomQuery(rng);
  std::string bytes;
  wire::EncodeQuery(query, 2.5, &bytes);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      wire::Frame frame;
      auto consumed = wire::ExtractFrame(flipped, &frame);
      if (!consumed.ok()) continue;  // typed header rejection — fine
      if (*consumed == 0) continue;  // looks incomplete now — fine
      // A frame that still parses decodes to a value or a typed error.
      if (frame.type == wire::FrameType::kQuery) {
        auto decoded = wire::DecodeQuery(frame);
        (void)decoded;
      } else {
        auto decoded = wire::DecodeResult(frame);
        (void)decoded;
      }
    }
  }
}

TEST(WireCodecTest, HeaderRejectionsAreTyped) {
  std::string bytes;
  wire::EncodeQuery(Query{}, 0, &bytes);
  {
    std::string bad = bytes;
    bad[0] = 'X';  // magic
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kDataLoss);
  }
  {
    std::string bad = bytes;
    bad[2] = 0;  // version 0: never valid
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[2] = wire::kVersion + 1;  // newer dialect: reject, never guess
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[3] = 99;  // unknown frame type
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[7] = 0x7f;  // length field far beyond kMaxFramePayload
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WireCodecTest, QueryPayloadSizeIsExact) {
  std::string bytes;
  wire::EncodeQuery(Query{}, 0, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  frame.payload.push_back('\0');
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireCodecTest, NaNWireDeadlineIsRejected) {
  std::string bytes;
  wire::EncodeQuery(Query{}, std::numeric_limits<double>::quiet_NaN(),
                    &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, PipelinedFramesExtractOneAtATime) {
  util::Rng rng(29);
  std::string stream;
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(RandomQuery(rng));
    wire::EncodeQuery(queries.back(), 0, &stream);
  }
  std::string_view rest(stream);
  for (int i = 0; i < 10; ++i) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(rest, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_GT(*consumed, 0u);
    auto decoded = wire::DecodeQuery(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->query, queries[static_cast<size_t>(i)]);
    rest.remove_prefix(*consumed);
  }
  EXPECT_TRUE(rest.empty());
}

// ---------------------------------------------------------------------------
// Capture files (record/replay)

TEST(CaptureFileTest, RoundTripsFramesByteIdentically) {
  util::Rng rng(31);
  std::vector<std::string> frames;
  for (int i = 0; i < 50; ++i) {
    std::string frame;
    wire::EncodeQuery(RandomQuery(rng), rng.UniformDouble() * 10, &frame);
    frames.push_back(frame);
  }
  std::string path = TempPath("capture_roundtrip.yvq");
  auto writer = net::CaptureWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  for (const auto& frame : frames) ASSERT_TRUE(writer->Append(frame).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto loaded = net::LoadCapture(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, frames);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, TruncatedTailIsTypedError) {
  std::string path = TempPath("capture_truncated.yvq");
  auto writer = net::CaptureWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  std::string frame;
  wire::EncodeQuery(Query{}, 0, &frame);
  ASSERT_TRUE(writer->Append(frame).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Chop the last byte: the final frame is now a torn write.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()) - 1);
  out.close();

  auto loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, BadMagicAndVersionAreTypedErrors) {
  std::string path = TempPath("capture_bad_header.yvq");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTACAPT";
  }
  auto loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char header[8] = {0x59, 0x57, 0x52, 0x43,
                            wire::kVersion + 1, 0, 0, 0};
    out.write(header, sizeof(header));
  }
  loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, MissingFileIsNotFound) {
  auto loaded = net::LoadCapture(TempPath("does_not_exist.yvq"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace yver::serve
