// Property tests of the serve::wire codec (DESIGN.md §12): encode ->
// extract -> decode -> re-encode must be byte-identical for arbitrary
// queries and results; truncated, bit-flipped, or version-skewed bytes
// must produce typed util::Status errors — never a crash or over-read.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "serve/net/replay.h"
#include "serve/query.h"
#include "serve/wire.h"
#include "util/rng.h"
#include "util/status.h"

namespace yver::serve {
namespace {

using util::StatusCode;

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

Query RandomQuery(util::Rng& rng) {
  Query query;
  query.record = static_cast<data::RecordIdx>(rng.Next() & 0xffffffff);
  query.certainty = rng.UniformDouble() * 2 - 1;
  query.k = static_cast<size_t>(rng.UniformInt(0, 100));
  query.granularity =
      rng.Bernoulli(0.5) ? Granularity::kEntity : Granularity::kMatches;
  return query;
}

QueryResult RandomResult(util::Rng& rng) {
  QueryResult result;
  result.query = RandomQuery(rng);
  result.degraded = rng.Bernoulli(0.3);
  size_t matches = static_cast<size_t>(rng.UniformInt(0, 20));
  for (size_t i = 0; i < matches; ++i) {
    core::RankedMatch m;
    auto a = static_cast<data::RecordIdx>(rng.UniformInt(0, 1000));
    auto b = static_cast<data::RecordIdx>(rng.UniformInt(1001, 2000));
    m.pair = data::RecordPair(a, b);
    m.confidence = rng.UniformDouble();
    m.block_score = rng.UniformDouble();
    result.matches.push_back(m);
  }
  size_t entity = static_cast<size_t>(rng.UniformInt(0, 30));
  for (size_t i = 0; i < entity; ++i) {
    result.entity.push_back(
        static_cast<data::RecordIdx>(rng.UniformInt(0, 5000)));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(WireCodecTest, QueryRoundTripIsByteIdentical) {
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Query query = RandomQuery(rng);
    double deadline_ms = rng.Bernoulli(0.5) ? rng.UniformDouble() * 100 : 0;
    std::string bytes;
    wire::EncodeQuery(query, deadline_ms, &bytes);

    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, bytes.size());
    auto decoded = wire::DecodeQuery(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->query, query);  // semantic fields
    EXPECT_EQ(decoded->deadline_ms, deadline_ms);
    // A wire deadline materializes into a real Deadline at decode time.
    EXPECT_EQ(decoded->query.deadline.is_infinite(), deadline_ms == 0);

    std::string again;
    wire::EncodeQuery(decoded->query, decoded->deadline_ms, &again);
    EXPECT_EQ(bytes, again);
  }
}

TEST(WireCodecTest, ResultRoundTripIsByteIdentical) {
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    QueryResult result = RandomResult(rng);
    std::string bytes;
    wire::EncodeResult(result, &bytes);

    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, bytes.size());
    ASSERT_EQ(frame.type, wire::FrameType::kResult);
    auto decoded = wire::DecodeResult(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->degraded, result.degraded);
    EXPECT_EQ(decoded->entity, result.entity);
    ASSERT_EQ(decoded->matches.size(), result.matches.size());

    std::string again;
    wire::EncodeResult(*decoded, &again);
    EXPECT_EQ(bytes, again);
  }
}

TEST(WireCodecTest, FromCacheIsNotOnTheWire) {
  util::Rng rng(13);
  QueryResult result = RandomResult(rng);
  result.from_cache = false;
  std::string cold;
  wire::EncodeResult(result, &cold);
  result.from_cache = true;
  std::string warm;
  wire::EncodeResult(result, &warm);
  // The determinism contract: cache state never changes response bytes.
  EXPECT_EQ(cold, warm);
}

TEST(WireCodecTest, ErrorRoundTripPreservesCodeAndMessage) {
  const util::Status statuses[] = {
      util::Status::InvalidArgument("certainty is NaN"),
      util::Status::NotFound("no such record"),
      util::Status::OutOfRange("record 999 beyond corpus"),
      util::Status::DataLoss("torn read"),
      util::Status::Internal("invariant"),
      util::Status::DeadlineExceeded("budget spent"),
      util::Status::ResourceExhausted("shed"),
      util::Status::Unavailable("try again"),
  };
  for (const util::Status& status : statuses) {
    std::string bytes;
    wire::EncodeResult(status, &bytes);
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(frame.type, wire::FrameType::kError);
    auto decoded = wire::DecodeResult(frame);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), status.code());
    EXPECT_EQ(decoded.status().message(), status.message());
  }
}

TEST(WireCodecTest, DoubleBitPatternsSurviveExactly) {
  // NaN certainty must travel bit-exactly: the server rejects it with the
  // same typed error the in-process API gives, which requires it to arrive
  // intact rather than be mangled by a lossy text encoding.
  Query query;
  query.certainty = std::numeric_limits<double>::quiet_NaN();
  std::string bytes;
  wire::EncodeQuery(query, 0, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>(decoded->query.certainty),
            std::bit_cast<uint64_t>(query.certainty));
}

TEST(WireCodecTest, InfoRoundTrip) {
  wire::ServerInfo info;
  info.num_records = 123;
  info.num_matches = 456;
  info.checksum = 0xdeadbeefcafef00dULL;
  info.metrics.queries = 9;
  info.metrics.errors = 2;
  info.metrics.cache_hits = 3;
  info.metrics.cache_misses = 6;
  info.metrics.shed = 1;
  info.metrics.deadline_exceeded = 1;
  info.metrics.degraded = 1;
  info.metrics.total_latency_ms = 2.5;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 0);
  info.metrics.latency_histogram_ns[20] = 9;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_records, info.num_records);
  EXPECT_EQ(decoded->num_matches, info.num_matches);
  EXPECT_EQ(decoded->checksum, info.checksum);
  EXPECT_EQ(decoded->metrics.queries, info.metrics.queries);
  EXPECT_EQ(decoded->metrics.latency_histogram_ns,
            info.metrics.latency_histogram_ns);
}

// ---------------------------------------------------------------------------
// Malformed input: typed errors, never crashes

TEST(WireCodecTest, TruncatedPrefixesAreIncompleteNeverError) {
  util::Rng rng(17);
  Query query = RandomQuery(rng);
  std::string bytes;
  wire::EncodeQuery(query, 5.0, &bytes);
  // Every strict prefix is either "incomplete, read more" (consumed == 0)
  // — a partial read is not an error — and never a crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(std::string_view(bytes).substr(0, len),
                                       &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << len;
    EXPECT_EQ(*consumed, 0u) << "prefix " << len;
  }
}

TEST(WireCodecTest, TruncatedPayloadIsTypedError) {
  // A frame whose header promises more payload than the type needs, or a
  // payload cut short relative to its own counts, must fail typed.
  util::Rng rng(19);
  QueryResult result = RandomResult(rng);
  std::string bytes;
  wire::EncodeResult(result, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    wire::Frame shorter = frame;
    shorter.payload.resize(cut);
    auto decoded = wire::DecodeResult(shorter);
    ASSERT_FALSE(decoded.ok()) << "cut " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST(WireCodecTest, BitFlipsNeverCrashTheDecoder) {
  util::Rng rng(23);
  Query query = RandomQuery(rng);
  std::string bytes;
  wire::EncodeQuery(query, 2.5, &bytes);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      wire::Frame frame;
      auto consumed = wire::ExtractFrame(flipped, &frame);
      if (!consumed.ok()) continue;  // typed header rejection — fine
      if (*consumed == 0) continue;  // looks incomplete now — fine
      // A frame that still parses decodes to a value or a typed error.
      if (frame.type == wire::FrameType::kQuery) {
        auto decoded = wire::DecodeQuery(frame);
        (void)decoded;
      } else {
        auto decoded = wire::DecodeResult(frame);
        (void)decoded;
      }
    }
  }
}

TEST(WireCodecTest, HeaderRejectionsAreTyped) {
  std::string bytes;
  wire::EncodeQuery(Query{}, 0, &bytes);
  {
    std::string bad = bytes;
    bad[0] = 'X';  // magic
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kDataLoss);
  }
  {
    std::string bad = bytes;
    bad[2] = 0;  // version 0: never valid
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[2] = wire::kVersion + 1;  // newer dialect: reject, never guess
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[3] = 99;  // unknown frame type
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string bad = bytes;
    bad[7] = 0x7f;  // length field far beyond kMaxFramePayload
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bad, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kDataLoss);
  }
}

TEST(WireCodecTest, QueryPayloadSizeIsExact) {
  std::string bytes;
  wire::EncodeQuery(Query{}, 0, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  frame.payload.push_back('\0');
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireCodecTest, NaNWireDeadlineIsRejected) {
  std::string bytes;
  wire::EncodeQuery(Query{}, std::numeric_limits<double>::quiet_NaN(),
                    &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeQuery(frame);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, PipelinedFramesExtractOneAtATime) {
  util::Rng rng(29);
  std::string stream;
  std::vector<Query> queries;
  for (int i = 0; i < 10; ++i) {
    queries.push_back(RandomQuery(rng));
    wire::EncodeQuery(queries.back(), 0, &stream);
  }
  std::string_view rest(stream);
  for (int i = 0; i < 10; ++i) {
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(rest, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_GT(*consumed, 0u);
    auto decoded = wire::DecodeQuery(frame);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->query, queries[static_cast<size_t>(i)]);
    rest.remove_prefix(*consumed);
  }
  EXPECT_TRUE(rest.empty());
}

// ---------------------------------------------------------------------------
// Live-ingest frames (v2): kAppendRequest / kAppendAck

data::Record RandomRecord(util::Rng& rng) {
  data::Record record;
  record.book_id = rng.Next();
  record.source_id = static_cast<uint32_t>(rng.Next() & 0xffffffff);
  record.source_kind = rng.Bernoulli(0.5) ? data::SourceKind::kPageOfTestimony
                                          : data::SourceKind::kVictimList;
  record.entity_id = static_cast<int64_t>(rng.Next());
  record.family_id = static_cast<int64_t>(rng.Next());
  size_t entries = static_cast<size_t>(rng.UniformInt(1, 8));
  for (size_t i = 0; i < entries; ++i) {
    auto attr = static_cast<data::AttributeId>(
        rng.UniformInt(0, static_cast<int64_t>(data::kNumAttributes) - 1));
    size_t len = static_cast<size_t>(rng.UniformInt(1, 12));
    std::string value;
    for (size_t c = 0; c < len; ++c) {
      value.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    record.Add(attr, value);
  }
  return record;
}

TEST(WireCodecTest, AppendRoundTripIsByteIdentical) {
  util::Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    data::Record record = RandomRecord(rng);
    std::string bytes;
    wire::EncodeAppend(record, &bytes);

    wire::Frame frame;
    auto consumed = wire::ExtractFrame(bytes, &frame);
    ASSERT_TRUE(consumed.ok());
    ASSERT_EQ(*consumed, bytes.size());
    ASSERT_EQ(frame.type, wire::FrameType::kAppendRequest);
    auto decoded = wire::DecodeAppend(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->book_id, record.book_id);
    EXPECT_EQ(decoded->source_id, record.source_id);
    EXPECT_EQ(decoded->source_kind, record.source_kind);
    EXPECT_EQ(decoded->entity_id, record.entity_id);
    EXPECT_EQ(decoded->family_id, record.family_id);
    ASSERT_EQ(decoded->entries().size(), record.entries().size());
    for (size_t e = 0; e < record.entries().size(); ++e) {
      EXPECT_EQ(decoded->entries()[e].attr, record.entries()[e].attr);
      EXPECT_EQ(decoded->entries()[e].value, record.entries()[e].value);
    }

    std::string again;
    wire::EncodeAppend(*decoded, &again);
    EXPECT_EQ(bytes, again) << "append re-encode is not byte-identical";
  }
}

TEST(WireCodecTest, AppendAckRoundTrip) {
  wire::AppendAck ack;
  ack.record_idx = 0x123456789abcdefULL;
  ack.generation = 42;
  ack.durable = true;
  ack.wal_sequence = 17;
  std::string bytes;
  wire::EncodeAppendAck(ack, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  ASSERT_EQ(frame.type, wire::FrameType::kAppendAck);
  auto decoded = wire::DecodeAppendAck(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->record_idx, ack.record_idx);
  EXPECT_EQ(decoded->generation, ack.generation);
  EXPECT_TRUE(decoded->durable);
  EXPECT_EQ(decoded->wal_sequence, 17u);

  frame.payload.push_back('\0');
  EXPECT_EQ(wire::DecodeAppendAck(frame).status().code(),
            StatusCode::kDataLoss);
}

TEST(WireCodecTest, TruncatedAppendPayloadIsTypedError) {
  util::Rng rng(41);
  data::Record record = RandomRecord(rng);
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  for (size_t cut = 0; cut < frame.payload.size(); ++cut) {
    wire::Frame shorter = frame;
    shorter.payload.resize(cut);
    auto decoded = wire::DecodeAppend(shorter);
    ASSERT_FALSE(decoded.ok()) << "cut " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut " << cut;
  }
}

TEST(WireCodecTest, MalformedAppendFieldsAreTypedErrors) {
  data::Record record;
  record.book_id = 7;
  record.Add(data::AttributeId::kFirstName, "x");
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  wire::Frame good;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &good).ok());
  // Payload layout: book_id u64, source_id u32, source_kind u8, ...
  {
    wire::Frame bad = good;
    bad.payload[12] = 99;  // source kind beyond the enum
    EXPECT_EQ(wire::DecodeAppend(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    wire::Frame bad = good;
    // First entry's attribute byte sits right after the fixed header +
    // entry count: 8 + 4 + 1 + 8 + 8 + 2 = 31.
    bad.payload[31] = static_cast<char>(data::kNumAttributes);
    EXPECT_EQ(wire::DecodeAppend(bad).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(WireCodecTest, AppendBitFlipsNeverCrashTheDecoder) {
  util::Rng rng(43);
  data::Record record = RandomRecord(rng);
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      wire::Frame frame;
      auto consumed = wire::ExtractFrame(flipped, &frame);
      if (!consumed.ok()) continue;  // typed header rejection — fine
      if (*consumed == 0) continue;  // looks incomplete now — fine
      switch (frame.type) {
        case wire::FrameType::kAppendRequest: {
          auto decoded = wire::DecodeAppend(frame);
          (void)decoded;
          break;
        }
        case wire::FrameType::kAppendAck: {
          auto decoded = wire::DecodeAppendAck(frame);
          (void)decoded;
          break;
        }
        default: {
          auto decoded = wire::DecodeResult(frame);
          (void)decoded;
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Version evolution: v2 payload additions, v1 decode defaults

TEST(WireCodecTest, ResultCarriesItsGeneration) {
  util::Rng rng(47);
  QueryResult result = RandomResult(rng);
  result.generation = 17;
  std::string bytes;
  wire::EncodeResult(result, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeResult(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->generation, 17u);
}

TEST(WireCodecTest, InfoCarriesLiveIndexGauges) {
  wire::ServerInfo info;
  info.num_records = 10;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 0);
  info.metrics.generation = 5;
  info.metrics.publishes = 4;
  info.metrics.pinned_readers = 2;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->metrics.generation, 5u);
  EXPECT_EQ(decoded->metrics.publishes, 4u);
  EXPECT_EQ(decoded->metrics.pinned_readers, 2u);
}

// Rewrites an encoded frame as an older `version` with `chop` trailing
// payload bytes removed — a byte-faithful old frame as an old binary
// would have written it (payload additions are strictly trailing).
std::string AsOlderFrame(std::string bytes, uint8_t version, size_t chop) {
  bytes[2] = static_cast<char>(version);
  bytes.resize(bytes.size() - chop);
  uint32_t len = static_cast<uint32_t>(bytes.size() - wire::kHeaderSize);
  for (int i = 0; i < 4; ++i) {
    bytes[4 + static_cast<size_t>(i)] =
        static_cast<char>((len >> (8 * i)) & 0xff);
  }
  return bytes;
}

std::string AsV1Frame(std::string bytes, size_t chop) {
  return AsOlderFrame(std::move(bytes), 1, chop);
}

TEST(WireCodecTest, V1ResultDecodesWithGenerationOne) {
  util::Rng rng(53);
  QueryResult result = RandomResult(rng);
  result.generation = 9;  // must NOT survive a v1 round trip
  std::string bytes;
  wire::EncodeResult(result, &bytes);
  // v1 kResult = v2 minus the trailing 8-byte generation.
  std::string v1 = AsV1Frame(bytes, 8);
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(v1, &frame);
  ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(frame.version, 1);
  auto decoded = wire::DecodeResult(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->generation, 1u)
      << "a v1 server only ever serves generation 1";
  EXPECT_EQ(decoded->entity, result.entity);
}

TEST(WireCodecTest, V1InfoDecodesWithDefaultGauges) {
  wire::ServerInfo info;
  info.num_records = 77;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 3);
  info.metrics.generation = 6;
  info.metrics.publishes = 5;
  info.metrics.pinned_readers = 4;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  // v1 kInfo = v4 minus the trailing v2 gauges (24 bytes), the v3
  // evicted_stale counter (8 bytes), and the v4 net gauges (64 bytes).
  std::string v1 = AsV1Frame(bytes, 96);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(v1, &frame).ok());
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_records, 77u);
  EXPECT_EQ(decoded->metrics.generation, 1u);
  EXPECT_EQ(decoded->metrics.publishes, 0u);
  EXPECT_EQ(decoded->metrics.pinned_readers, 0u);
  EXPECT_EQ(decoded->metrics.evicted_stale, 0u);
}

TEST(WireCodecTest, V2InfoDecodesWithZeroEvictedStale) {
  wire::ServerInfo info;
  info.num_records = 31;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 1);
  info.metrics.generation = 8;
  info.metrics.publishes = 7;
  info.metrics.pinned_readers = 2;
  info.metrics.evicted_stale = 99;  // must NOT survive a v2 round trip
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  // v2 kInfo = v4 minus the trailing 8-byte evicted_stale counter and the
  // 64 bytes of v4 net gauges.
  std::string v2 = AsOlderFrame(bytes, 2, 72);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(v2, &frame).ok());
  EXPECT_EQ(frame.version, 2);
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->metrics.generation, 8u);
  EXPECT_EQ(decoded->metrics.publishes, 7u);
  EXPECT_EQ(decoded->metrics.pinned_readers, 2u);
  EXPECT_EQ(decoded->metrics.evicted_stale, 0u)
      << "a v2 server never reported evicted_stale";
}

TEST(WireCodecTest, V3InfoDecodesWithZeroNetGauges) {
  wire::ServerInfo info;
  info.num_records = 12;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 2);
  info.metrics.generation = 3;
  info.metrics.evicted_stale = 5;
  info.net.open_connections = 7;  // must NOT survive a v3 round trip
  info.net.disconnects_slowloris = 9;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  // v3 kInfo = v4 minus the trailing 64 bytes of net gauges.
  std::string v3 = AsOlderFrame(bytes, 3, 64);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(v3, &frame).ok());
  EXPECT_EQ(frame.version, 3);
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->metrics.generation, 3u);
  EXPECT_EQ(decoded->metrics.evicted_stale, 5u);
  EXPECT_EQ(decoded->net.open_connections, 0u)
      << "a v3 server never reported net gauges";
  EXPECT_EQ(decoded->net.disconnects_slowloris, 0u);
  EXPECT_EQ(decoded->net.rate_limited_frames, 0u);
}

TEST(WireCodecTest, V4InfoRoundTripsNetGauges) {
  wire::ServerInfo info;
  info.metrics.latency_histogram_ns.assign(kServiceLatencyBuckets, 0);
  info.net.open_connections = 3;
  info.net.paused_reads = 1;
  info.net.disconnects_idle = 2;
  info.net.disconnects_slowloris = 4;
  info.net.disconnects_oversize = 5;
  info.net.disconnects_rate_limited = 6;
  info.net.disconnects_write_stall = 7;
  info.net.rate_limited_frames = 41;
  std::string bytes;
  wire::EncodeInfo(info, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  EXPECT_EQ(frame.version, wire::kVersion);
  auto decoded = wire::DecodeInfo(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->net.open_connections, 3u);
  EXPECT_EQ(decoded->net.paused_reads, 1u);
  EXPECT_EQ(decoded->net.disconnects_idle, 2u);
  EXPECT_EQ(decoded->net.disconnects_slowloris, 4u);
  EXPECT_EQ(decoded->net.disconnects_oversize, 5u);
  EXPECT_EQ(decoded->net.disconnects_rate_limited, 6u);
  EXPECT_EQ(decoded->net.disconnects_write_stall, 7u);
  EXPECT_EQ(decoded->net.rate_limited_frames, 41u);
}

TEST(WireCodecTest, PeekFrameHeaderReportsDeclaredLengthBeforePayload) {
  Query query;
  query.record = static_cast<data::RecordIdx>(4);
  query.certainty = 0.5;
  std::string bytes;
  wire::EncodeQuery(query, 0, &bytes);
  // Peek succeeds on the bare 8-byte header — no payload bytes needed.
  std::string header_only = bytes.substr(0, wire::kHeaderSize);
  wire::FrameHeader header;
  auto peeked = wire::PeekFrameHeader(header_only, &header);
  ASSERT_TRUE(peeked.ok()) << peeked.status().ToString();
  EXPECT_EQ(*peeked, wire::kHeaderSize);
  EXPECT_EQ(header.type, wire::FrameType::kQuery);
  EXPECT_EQ(header.version, wire::kVersion);
  EXPECT_EQ(header.payload_length, bytes.size() - wire::kHeaderSize);
  // Under kHeaderSize bytes: incomplete (0), never an error.
  for (size_t n = 0; n < wire::kHeaderSize; ++n) {
    auto partial = wire::PeekFrameHeader(bytes.substr(0, n), &header);
    ASSERT_TRUE(partial.ok()) << "prefix length " << n;
    EXPECT_EQ(*partial, 0u) << "prefix length " << n;
  }
}

// Fuzz-style regression: an adversarial header declaring a giant payload
// must be rejected from the 8 header bytes alone — no buffer is reserved,
// no payload is awaited. This is the pre-allocation check ExtractFrame
// callers rely on (DESIGN.md §15).
TEST(WireCodecTest, GiantDeclaredLengthIsRejectedFromHeaderAlone) {
  util::Rng rng(211);
  for (int trial = 0; trial < 64; ++trial) {
    uint64_t declared =
        wire::kMaxFramePayload + 1 +
        rng.UniformInt(0, std::numeric_limits<uint32_t>::max() -
                              static_cast<int64_t>(wire::kMaxFramePayload) -
                              1);
    std::string header_bytes;
    header_bytes.push_back(0x59);  // 'Y'
    header_bytes.push_back(0x57);  // 'W'
    header_bytes.push_back(static_cast<char>(wire::kVersion));
    header_bytes.push_back(
        static_cast<char>(wire::FrameType::kQuery));
    for (int i = 0; i < 4; ++i) {
      header_bytes.push_back(
          static_cast<char>((declared >> (8 * i)) & 0xff));
    }
    wire::FrameHeader header;
    auto peeked = wire::PeekFrameHeader(header_bytes, &header);
    ASSERT_FALSE(peeked.ok()) << "declared " << declared;
    EXPECT_EQ(peeked.status().code(), StatusCode::kDataLoss);
    // ExtractFrame agrees and allocates nothing for the phantom payload.
    wire::Frame frame;
    auto consumed = wire::ExtractFrame(header_bytes, &frame);
    ASSERT_FALSE(consumed.ok());
    EXPECT_EQ(consumed.status().code(), StatusCode::kDataLoss);
    EXPECT_TRUE(frame.payload.empty());
  }
}

TEST(WireCodecTest, V2AppendAckDecodesAsNotDurable) {
  wire::AppendAck ack;
  ack.record_idx = 512;
  ack.generation = 3;
  ack.durable = true;  // must NOT survive a v2 round trip
  ack.wal_sequence = 12;
  std::string bytes;
  wire::EncodeAppendAck(ack, &bytes);
  // v2 kAppendAck = v3 minus the trailing durable u8 + wal_sequence u64.
  std::string v2 = AsOlderFrame(bytes, 2, 9);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(v2, &frame).ok());
  EXPECT_EQ(frame.version, 2);
  auto decoded = wire::DecodeAppendAck(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->record_idx, 512u);
  EXPECT_EQ(decoded->generation, 3u);
  EXPECT_FALSE(decoded->durable)
      << "a v2 server never promised durability";
  EXPECT_EQ(decoded->wal_sequence, 0u);
}

TEST(WireCodecTest, AppendAckRejectsUnknownDurableFlag) {
  wire::AppendAck ack;
  ack.record_idx = 1;
  ack.generation = 1;
  std::string bytes;
  wire::EncodeAppendAck(ack, &bytes);
  wire::Frame frame;
  ASSERT_TRUE(wire::ExtractFrame(bytes, &frame).ok());
  // The durable byte sits after record_idx + generation (16 bytes in).
  frame.payload[16] = 2;
  EXPECT_EQ(wire::DecodeAppendAck(frame).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireCodecTest, AppendFramesAreVersionTwoOnly) {
  // An append frame claiming version 1 is a protocol violation: the frame
  // type did not exist in v1. ExtractFrame's per-version type range check
  // must reject it.
  data::Record record;
  record.book_id = 1;
  record.Add(data::AttributeId::kFirstName, "x");
  std::string bytes;
  wire::EncodeAppend(record, &bytes);
  bytes[2] = 1;  // lie about the version
  wire::Frame frame;
  auto consumed = wire::ExtractFrame(bytes, &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
}

// The status-code map is wire ABI: these bytes are frozen forever. A new
// code may only ever be appended (with its byte pinned here); renumbering
// breaks every capture and every old client.
TEST(WireCodecTest, StatusCodeWireBytesAreFrozen) {
  const struct {
    StatusCode code;
    uint8_t wire_byte;
  } kFrozen[] = {
      {StatusCode::kOk, 0},
      {StatusCode::kInvalidArgument, 1},
      {StatusCode::kNotFound, 2},
      {StatusCode::kOutOfRange, 3},
      {StatusCode::kDataLoss, 4},
      {StatusCode::kInternal, 5},
      {StatusCode::kDeadlineExceeded, 6},
      {StatusCode::kResourceExhausted, 7},
      {StatusCode::kUnavailable, 8},
  };
  EXPECT_EQ(std::size(kFrozen), 9u) << "added a StatusCode? pin it here";
  for (const auto& entry : kFrozen) {
    EXPECT_EQ(static_cast<uint8_t>(entry.code), entry.wire_byte)
        << util::StatusCodeName(entry.code) << " moved — wire ABI break";
  }
}

// ---------------------------------------------------------------------------
// Capture files (record/replay)

TEST(CaptureFileTest, RoundTripsFramesByteIdentically) {
  util::Rng rng(31);
  std::vector<std::string> frames;
  for (int i = 0; i < 50; ++i) {
    std::string frame;
    wire::EncodeQuery(RandomQuery(rng), rng.UniformDouble() * 10, &frame);
    frames.push_back(frame);
  }
  std::string path = TempPath("capture_roundtrip.yvq");
  auto writer = net::CaptureWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  for (const auto& frame : frames) ASSERT_TRUE(writer->Append(frame).ok());
  ASSERT_TRUE(writer->Close().ok());

  auto loaded = net::LoadCapture(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(*loaded, frames);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, TruncatedTailIsTypedError) {
  std::string path = TempPath("capture_truncated.yvq");
  auto writer = net::CaptureWriter::Open(path);
  ASSERT_TRUE(writer.ok());
  std::string frame;
  wire::EncodeQuery(Query{}, 0, &frame);
  ASSERT_TRUE(writer->Append(frame).ok());
  ASSERT_TRUE(writer->Close().ok());

  // Chop the last byte: the final frame is now a torn write.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()) - 1);
  out.close();

  auto loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, BadMagicAndVersionAreTypedErrors) {
  std::string path = TempPath("capture_bad_header.yvq");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "NOTACAPT";
  }
  auto loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char header[8] = {0x59, 0x57, 0x52, 0x43,
                            wire::kVersion + 1, 0, 0, 0};
    out.write(header, sizeof(header));
  }
  loaded = net::LoadCapture(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CaptureFileTest, MissingFileIsNotFound) {
  auto loaded = net::LoadCapture(TempPath("does_not_exist.yvq"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace yver::serve
