// yver_cli — command-line front end for the uncertain-ER library.
//
//   yver_cli generate    --persons N [--region italy|all] [--mv] [--seed S]
//                        --out data.csv
//   yver_cli stats       --in data.csv
//   yver_cli normalize   --in data.csv --out clean.csv
//   yver_cli resolve     --in data.csv --out matches.csv [--ng X]
//                        [--maxminsup K] [--no-classify] [--samesrc]
//                        [--model-out model.adt] [--threads T] [--profile]
//   yver_cli index       --in data.csv --matches matches.csv --out idx.yvx
//   yver_cli query       --in data.csv (--matches matches.csv | --index idx.yvx)
//                        [--certainty C] [--book-id B] [--k K]
//   yver_cli serve-bench --in data.csv (--matches matches.csv | --index idx.yvx)
//                        [--queries N] [--certainty C] [--threads T]
//                        [--hot-set H] [--no-cache] [--deadline-ms D]
//   yver_cli serve       --in data.csv (--matches matches.csv | --index idx.yvx)
//                        [--port P] [--port-file F] [--threads T]
//                        [--dispatch-threads D] [--max-batch B] [--no-cache]
//                        [--live] [--model model.adt] [--publish-batch N]
//                        [--ingest-queue N] [--wal-dir D]
//                        [--wal-segment-bytes N] [--wal-snapshot-every N]
//   yver_cli append      --port P --in new.csv [--count N] [--wait-ms D]
//                        [--verify] [--verify-from I]
//   yver_cli loadgen     --port P [--connections C] [--queries N] [--qps Q]
//                        [--certainty X] [--k K] [--deadline-ms D]
//                        [--hot-set H] [--entity-fraction F] [--seed S]
//                        [--record cap.yvr | --replay cap.yvr] [--json]
//   yver_cli sample      --in data.csv --out sub.csv [--fraction F]
//                        [--by-entity] [--country NAME] [--seed S]
//   yver_cli graph       --in data.csv (--matches matches.csv | --index idx.yvx)
//                        --out g.dot [--certainty C] [--max-entities N]
//   yver_cli families    --in data.csv (--matches matches.csv | --index idx.yvx)
//                        [--certainty C] [--max-shown N]
//
// `resolve` trains the ADTree from the simulated expert tagger when the
// dataset carries ground-truth entity ids (synthetic corpora do); without
// them it falls back to block-score ranking (--no-classify implied).
// `--threads T` parallelizes the whole pipeline (0 = one worker per
// hardware thread); output is byte-identical for every thread count.
// `--profile` prints the per-stage wall-time breakdown (encode / blocking
// / extract / tag / train / score / merge), making the one-time columnar
// encode cost vs. the per-pair extraction win visible on real runs.
//
// `index` freezes a matches CSV into the binary serve::ResolutionIndex
// artifact; `query`, `graph`, `families` and `serve-bench` accept either
// form and build the same in-memory index from both.
//
// `serve` puts the index on the wire (DESIGN.md §12): a binary TCP front
// end on 127.0.0.1 that `loadgen` drives with a synthetic or replayed
// workload. `yver_cli serve --help` documents every serving knob.
//
// `serve --live` watches for appends (DESIGN.md §13): kAppendRequest
// frames feed a background IncrementalResolver that publishes fresh index
// generations while queries keep flowing against pinned snapshots.
// `append` is the matching client: it streams records from a CSV into a
// live server, waits for the generation containing them to be served, and
// optionally queries one back as an end-to-end proof.
//
// `serve --live --wal-dir D` makes ingest durable (DESIGN.md §14): every
// append is written through a write-ahead log in D before it is ack'd, and
// a restart replays D so previously ack'd records are served again —
// `append --verify-from I` is the matching crash-recovery check.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/family_resolution.h"
#include "core/incremental.h"
#include "core/knowledge_graph.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "core/resolution_io.h"
#include "data/csv_io.h"
#include "data/sample.h"
#include "data/stats.h"
#include "ml/adtree_io.h"
#include "serve/ingest.h"
#include "serve/net/adversary.h"
#include "serve/net/client.h"
#include "serve/net/loadgen.h"
#include "serve/net/server.h"
#include "serve/query.h"
#include "serve/resolution_index.h"
#include "serve/resolution_service.h"
#include "serve/wal.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"
#include "text/normalizer.h"
#include "util/atomic_io.h"
#include "util/deadline.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using namespace yver;

// ---------------------------------------------------------------------------
// Tiny flag parser: --name value / --name (boolean).

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::strtod(Get(name).c_str(), nullptr) : fallback;
  }
  long GetInt(const std::string& name, long fallback) const {
    return Has(name) ? std::atol(Get(name).c_str()) : fallback;
  }
  std::string Require(const std::string& name) const {
    if (!Has(name)) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      std::exit(2);
    }
    return Get(name);
  }

 private:
  std::map<std::string, std::string> values_;
};

// ---------------------------------------------------------------------------
// Shared typed options. Each subcommand parses its Flags exactly once into
// one of these structs and hands them to library entry points — the same
// value types serve::ResolutionService consumes — instead of re-reading
// ad-hoc flags throughout the command body.

/// Options of the `resolve` pipeline family.
struct ResolveOptions {
  std::string in;
  std::string out;
  std::string model_out;  // empty = don't save the model
  uint32_t max_minsup = 5;
  double ng = 3.5;
  bool discard_same_source = false;
  bool no_classify = false;
  bool profile = false;
  size_t threads = 0;  // 0 = one worker per hardware thread

  core::PipelineConfig ToPipelineConfig(bool has_ground_truth) const {
    core::PipelineConfig config;
    config.blocking.max_minsup = max_minsup;
    config.blocking.ng = ng;
    config.blocking.expert_weighting = true;
    config.discard_same_source = discard_same_source;
    config.use_classifier = has_ground_truth && !no_classify;
    config.num_threads = threads;
    return config;
  }
};

ResolveOptions ParseResolveOptions(const Flags& flags) {
  ResolveOptions options;
  options.in = flags.Require("in");
  options.out = flags.Require("out");
  options.model_out = flags.Get("model-out");
  options.max_minsup = static_cast<uint32_t>(flags.GetInt("maxminsup", 5));
  options.ng = flags.GetDouble("ng", 3.5);
  options.discard_same_source = flags.Has("samesrc");
  options.no_classify = flags.Has("no-classify");
  options.profile = flags.Has("profile");
  options.threads = static_cast<size_t>(flags.GetInt("threads", 0));
  return options;
}

// Prints the per-stage wall-time breakdown of a resolve run, with the
// blocking stage further broken into its parallel substages.
void PrintStageProfile(const core::StageTimings& t) {
  struct Row {
    const char* name;
    double seconds;
  };
  const Row rows[] = {
      {"encode (bags + comparison corpus)", t.encode_seconds},
      {"blocking (MFIBlocks + filters)", t.blocking_seconds},
      {"extract (48-feature vectors)", t.extract_seconds},
      {"tag (expert labels, serial)", t.tag_seconds},
      {"train (ADTree boosting)", t.train_seconds},
      {"score (ADTree batch)", t.score_seconds},
      {"merge (match assembly + rank)", t.merge_seconds},
  };
  const blocking::BlockingTimings& b = t.blocking_substages;
  const Row blocking_rows[] = {
      {"  mine (FP-Growth itemsets)", b.mine_seconds},
      {"  support (index intersections)", b.support_seconds},
      {"  score (block scoring)", b.score_seconds},
      {"  threshold (sparse neighborhood)", b.threshold_seconds},
      {"  emit (pair maps + coverage)", b.emit_seconds},
  };
  double total = t.TotalSeconds();
  auto print_row = [total](const Row& row) {
    std::printf("  %-36s %9.3f s  %5.1f%%\n", row.name, row.seconds,
                total > 0.0 ? 100.0 * row.seconds / total : 0.0);
  };
  std::printf("\nstage profile (wall time):\n");
  for (size_t i = 0; i < std::size(rows); ++i) {
    print_row(rows[i]);
    if (i == 1) {  // the blocking row: append its substage breakdown
      for (const Row& sub : blocking_rows) print_row(sub);
    }
  }
  std::printf("  %-36s %9.3f s\n", "total (timed stages)", total);
}

/// Options shared by every command that queries a served resolution
/// (`query`, `graph`, `families`, `index`, `serve-bench`).
struct QueryOptions {
  std::string in;       // dataset CSV
  std::string matches;  // matches CSV (mutually optional with index_path)
  std::string index_path;
  std::string out;  // index/graph output path
  double certainty = 0.0;
  size_t k = 0;
  std::optional<uint64_t> book_id;
  size_t max_entities = 25;  // graph
  size_t max_shown = 5;      // families
  // serve-bench workload shape:
  size_t num_queries = 10000;
  size_t hot_set = 1024;
  size_t threads = 0;
  bool no_cache = false;
  double deadline_ms = 0;  // per-query budget; 0 = none

  serve::Query ToServeQuery(data::RecordIdx record,
                            serve::Granularity granularity) const {
    serve::Query query;
    query.record = record;
    query.certainty = certainty;
    query.k = k;
    query.granularity = granularity;
    if (deadline_ms > 0) {
      query.deadline = util::Deadline::AfterMillis(deadline_ms);
    }
    return query;
  }
};

/// Parses the workload-shape knobs every query-ish command shares. The
/// corpus flags (--in / --matches / --index) are layered on by
/// ParseQueryOptions; `loadgen` skips them because it talks to a running
/// server instead of loading an index itself.
QueryOptions ParseWorkloadShape(const Flags& flags) {
  QueryOptions options;
  options.certainty = flags.GetDouble("certainty", 0.0);
  if (std::isnan(options.certainty)) {
    // Mirror serve::ValidateQuery: the clustering paths that bypass the
    // service must never see a NaN threshold (it disables the break in
    // the sorted-scan loops).
    std::fprintf(stderr, "--certainty must not be NaN\n");
    std::exit(2);
  }
  options.k = static_cast<size_t>(flags.GetInt("k", 0));
  if (flags.Has("book-id")) {
    options.book_id =
        std::strtoull(flags.Get("book-id").c_str(), nullptr, 10);
  }
  options.max_entities =
      static_cast<size_t>(flags.GetInt("max-entities", 25));
  options.max_shown = static_cast<size_t>(flags.GetInt("max-shown", 5));
  options.num_queries = static_cast<size_t>(flags.GetInt("queries", 10000));
  options.hot_set = static_cast<size_t>(flags.GetInt("hot-set", 1024));
  options.threads = static_cast<size_t>(flags.GetInt("threads", 0));
  options.no_cache = flags.Has("no-cache");
  options.deadline_ms = flags.GetDouble("deadline-ms", 0);
  return options;
}

QueryOptions ParseQueryOptions(const Flags& flags) {
  QueryOptions options = ParseWorkloadShape(flags);
  options.in = flags.Require("in");
  options.matches = flags.Get("matches");
  options.index_path = flags.Get("index");
  options.out = flags.Get("out");
  return options;
}

/// The one options struct behind every serving subcommand. `serve`,
/// `serve-bench`, and `loadgen` parse the same flags into the same fields
/// (each ignores what it doesn't use: serve-bench never opens a port,
/// loadgen never loads a corpus), so a knob means the same thing — and is
/// documented once, in kServeHelp — across all three.
struct ServeOptions {
  QueryOptions query;          // corpus + workload shape (certainty, k, ...)
  uint16_t port = 0;           // serve: bind port (0 = ephemeral); loadgen:
                               // the server's port (required)
  std::string port_file;       // serve: write the bound port here (scripts
                               // find an ephemeral server without racing)
  size_t dispatch_threads = 1;
  size_t max_batch = 64;
  size_t max_connections = 1024;
  double drain_timeout_ms = 5000;
  // Hostile-network defense (serve; DESIGN.md §15). Zeros disable the
  // corresponding rate limits; buffer caps and timeouts default on.
  double idle_timeout_ms = 300000;
  double min_read_rate = 64;          // bytes/sec while a frame is partial
  double progress_window_ms = 5000;
  size_t max_out_buffer = 64u << 20;
  size_t max_in_buffer = 64u << 20;
  size_t sndbuf = 0;                  // SO_SNDBUF clamp; 0 = kernel default
  size_t max_frame_bytes = 0;         // 0 = the protocol max (16 MiB)
  size_t max_pending = 0;             // 0 = 2 * max_batch
  double write_stall_timeout_ms = 30000;
  double rate_limit = 0;              // per-connection queries/sec
  double rate_burst = 0;
  double global_rate_limit = 0;
  double global_rate_burst = 0;
  size_t rate_limit_streak = 1024;    // consecutive limited frames -> drop
  // Admission budgets (serve, serve-bench): 0 disables shedding.
  size_t max_in_flight = 0;
  size_t max_queue_depth = 0;
  // loadgen pacing + capture:
  size_t connections = 1;
  double qps = 0;              // 0 = closed loop
  double entity_fraction = 0;
  uint64_t seed = 17;
  std::string record_path;
  std::string replay_path;
  bool json = false;
  // loadgen client I/O + adversary modes:
  double io_timeout_ms = 30000;  // blocking-read budget; 0 = wait forever
  std::string adversary;         // hostile mode; empty = normal loadgen
  double duration_ms = 2000;     // adversary wall-clock budget
  double write_interval_ms = 50; // adversary dribble pacing
  // live ingest (serve --live) + append client:
  bool live = false;
  std::string model_path;      // ADTree for incremental scoring (optional;
                               // without it, block-score ranking)
  size_t publish_batch = 1;
  size_t ingest_queue = 4096;
  size_t append_count = 0;     // append: records to send (0 = all)
  double wait_ms = 10000;      // append: bound on the publish wait
  bool verify = false;         // append: query the last record back
  long verify_from = -1;       // append: query every record from this index
                               // up (crash-recovery re-verification)
  // durable ingest (serve --live --wal-dir):
  std::string wal_dir;         // write-ahead log directory; empty = acks
                               // mean enqueued, not durable
  size_t wal_segment_bytes = 4u << 20;
  size_t wal_snapshot_every = 256;

  serve::IngestOptions ToIngestOptions() const {
    serve::IngestOptions o;
    o.publish_batch = publish_batch;
    o.max_queue_depth = ingest_queue;
    return o;
  }

  serve::ServiceOptions ToServiceOptions() const {
    serve::ServiceOptions o;
    o.num_threads = query.threads;
    if (query.no_cache) o.cache_capacity = 0;
    o.max_in_flight = max_in_flight;
    o.max_queue_depth = max_queue_depth;
    return o;
  }

  serve::net::ServerOptions ToServerOptions() const {
    serve::net::ServerOptions o;
    o.port = port;
    o.dispatch_threads = dispatch_threads;
    o.max_batch = max_batch;
    o.max_connections = max_connections;
    o.drain_timeout_ms = drain_timeout_ms;
    o.idle_timeout_ms = idle_timeout_ms;
    o.min_read_bytes_per_sec = min_read_rate;
    o.progress_window_ms = progress_window_ms;
    o.max_out_buffer = max_out_buffer;
    o.max_in_buffer = max_in_buffer;
    o.so_sndbuf = sndbuf;
    o.max_frame_payload = max_frame_bytes;
    o.max_pending = max_pending;
    o.write_stall_timeout_ms = write_stall_timeout_ms;
    o.conn_rate_limit = rate_limit;
    o.conn_rate_burst = rate_burst;
    o.global_rate_limit = global_rate_limit;
    o.global_rate_burst = global_rate_burst;
    o.rate_limit_disconnect_streak = rate_limit_streak;
    return o;
  }

  serve::net::AdversaryOptions ToAdversaryOptions(
      serve::net::AdversaryMode mode) const {
    serve::net::AdversaryOptions o;
    o.port = port;
    o.mode = mode;
    o.connections = connections;
    o.duration_ms = duration_ms;
    o.write_interval_ms = write_interval_ms;
    o.read_timeout_ms = io_timeout_ms;
    o.seed = seed;
    return o;
  }

  serve::net::LoadGenOptions ToLoadGenOptions() const {
    serve::net::LoadGenOptions o;
    o.port = port;
    o.connections = connections;
    o.num_queries = query.num_queries;
    o.qps = qps;
    o.certainty = query.certainty;
    o.k = query.k;
    o.deadline_ms = query.deadline_ms;
    o.hot_set = query.hot_set;
    o.entity_fraction = entity_fraction;
    o.seed = seed;
    o.read_timeout_ms = io_timeout_ms;
    o.record_path = record_path;
    o.replay_path = replay_path;
    return o;
  }
};

ServeOptions ParseServeOptions(const Flags& flags, bool needs_corpus) {
  ServeOptions options;
  options.query =
      needs_corpus ? ParseQueryOptions(flags) : ParseWorkloadShape(flags);
  if (!needs_corpus && !flags.Has("queries")) {
    options.query.num_queries = 1000;  // loadgen default; bench keeps 10000
  }
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.port_file = flags.Get("port-file");
  options.dispatch_threads =
      static_cast<size_t>(flags.GetInt("dispatch-threads", 1));
  options.max_batch = static_cast<size_t>(flags.GetInt("max-batch", 64));
  options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 1024));
  options.drain_timeout_ms = flags.GetDouble("drain-timeout-ms", 5000);
  options.idle_timeout_ms = flags.GetDouble("idle-timeout-ms", 300000);
  options.min_read_rate = flags.GetDouble("min-read-rate", 64);
  options.progress_window_ms =
      flags.GetDouble("progress-window-ms", 5000);
  options.max_out_buffer = static_cast<size_t>(
      flags.GetInt("max-out-buffer", long{64u << 20}));
  options.max_in_buffer = static_cast<size_t>(
      flags.GetInt("max-in-buffer", long{64u << 20}));
  options.sndbuf = static_cast<size_t>(flags.GetInt("sndbuf", 0));
  options.max_frame_bytes =
      static_cast<size_t>(flags.GetInt("max-frame-bytes", 0));
  options.max_pending = static_cast<size_t>(flags.GetInt("max-pending", 0));
  options.write_stall_timeout_ms =
      flags.GetDouble("write-stall-timeout-ms", 30000);
  options.rate_limit = flags.GetDouble("rate-limit", 0);
  options.rate_burst = flags.GetDouble("rate-burst", 0);
  options.global_rate_limit = flags.GetDouble("global-rate-limit", 0);
  options.global_rate_burst = flags.GetDouble("global-rate-burst", 0);
  options.rate_limit_streak =
      static_cast<size_t>(flags.GetInt("rate-limit-streak", 1024));
  options.max_in_flight =
      static_cast<size_t>(flags.GetInt("max-in-flight", 0));
  options.max_queue_depth =
      static_cast<size_t>(flags.GetInt("max-queue-depth", 0));
  options.connections = static_cast<size_t>(flags.GetInt("connections", 1));
  options.qps = flags.GetDouble("qps", 0);
  options.entity_fraction = flags.GetDouble("entity-fraction", 0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  options.record_path = flags.Get("record");
  options.replay_path = flags.Get("replay");
  options.json = flags.Has("json");
  options.io_timeout_ms = flags.GetDouble("io-timeout-ms", 30000);
  options.adversary = flags.Get("adversary");
  options.duration_ms = flags.GetDouble("duration-ms", 2000);
  options.write_interval_ms = flags.GetDouble("write-interval-ms", 50);
  options.live = flags.Has("live") || flags.Has("watch-appends");
  options.model_path = flags.Get("model");
  options.publish_batch =
      static_cast<size_t>(flags.GetInt("publish-batch", 1));
  options.ingest_queue =
      static_cast<size_t>(flags.GetInt("ingest-queue", 4096));
  options.append_count = static_cast<size_t>(flags.GetInt("count", 0));
  options.wait_ms = flags.GetDouble("wait-ms", 10000);
  options.verify = flags.Has("verify");
  options.verify_from = flags.GetInt("verify-from", -1);
  options.wal_dir = flags.Get("wal-dir");
  options.wal_segment_bytes = static_cast<size_t>(
      flags.GetInt("wal-segment-bytes", long{4u << 20}));
  options.wal_snapshot_every =
      static_cast<size_t>(flags.GetInt("wal-snapshot-every", 256));
  return options;
}

// Every serving knob, documented exactly once; printed by --help on
// serve, serve-bench, and loadgen.
constexpr const char kServeHelp[] =
    "serving subcommands (shared flags parse into one ServeOptions):\n"
    "\n"
    "  serve       --in data.csv (--matches m.csv | --index idx.yvx)\n"
    "              binary TCP front end on 127.0.0.1; SIGINT/SIGTERM\n"
    "              drains in-flight queries before exiting\n"
    "  serve-bench --in data.csv (--matches m.csv | --index idx.yvx)\n"
    "              in-process batch benchmark (no socket)\n"
    "  loadgen     --port P\n"
    "              wire client driving a running `serve`\n"
    "  append      --port P --in new.csv\n"
    "              wire client streaming records into `serve --live`\n"
    "\n"
    "corpus (serve, serve-bench):\n"
    "  --in F                dataset CSV (required)\n"
    "  --matches F           ranked matches CSV\n"
    "  --index F             binary resolution index (preferred)\n"
    "  --threads T           service worker threads (0 = hw threads)\n"
    "  --no-cache            disable the query cache\n"
    "  --max-in-flight N     admission budget; 0 = no shedding (0)\n"
    "  --max-queue-depth N   waiters allowed beyond the budget (0)\n"
    "\n"
    "server (serve):\n"
    "  --port P              bind port (0 = kernel-assigned, default)\n"
    "  --port-file F         write the bound port to F once listening\n"
    "  --dispatch-threads D  batches in flight across connections (1)\n"
    "  --max-batch B         queries per dispatch per connection (64)\n"
    "  --max-connections N   accept cap; excess closed at once (1024)\n"
    "  --drain-timeout-ms D  graceful-shutdown bound (5000)\n"
    "\n"
    "connection defense (serve; DESIGN.md \xc2\xa7" "15):\n"
    "  --idle-timeout-ms D   drop a quiescent connection after D (300000)\n"
    "  --min-read-rate R     min bytes/sec while a frame is partial;\n"
    "                        slower is a slow-loris drop (64; 0 = off)\n"
    "  --progress-window-ms W  window the read rate is judged over (5000)\n"
    "  --max-out-buffer N    per-connection response backlog cap in bytes;\n"
    "                        a reader that falls behind it is dropped\n"
    "                        (67108864; 0 = unbounded)\n"
    "  --max-in-buffer N     per-connection receive buffer cap (67108864)\n"
    "  --sndbuf N            clamp SO_SNDBUF on accepted sockets so the\n"
    "                        kernel cannot absorb a dead reader's backlog\n"
    "                        past --max-out-buffer (0 = kernel default)\n"
    "  --max-frame-bytes N   reject frames declaring > N payload bytes\n"
    "                        before buffering any (0 = protocol max)\n"
    "  --max-pending N       decoded-but-undispatched queries per\n"
    "                        connection before reads pause (0 = 2*batch)\n"
    "  --write-stall-timeout-ms D  drop if no response byte drains for D\n"
    "                        while a backlog exists (30000; 0 = off)\n"
    "  --rate-limit Q        per-connection queries/sec token bucket;\n"
    "                        excess answered RESOURCE_EXHAUSTED (0 = off)\n"
    "  --rate-burst B        bucket depth (0 = one second's worth)\n"
    "  --global-rate-limit Q server-wide bucket across connections (0)\n"
    "  --global-rate-burst B global bucket depth (0)\n"
    "  --rate-limit-streak N consecutive limited frames before the\n"
    "                        connection is dropped (1024; 0 = never)\n"
    "\n"
    "workload shape (serve-bench, loadgen):\n"
    "  --queries N           total queries (10000 bench / 1000 loadgen)\n"
    "  --certainty C         confidence threshold in [0,1) (0)\n"
    "  --k K                 top-k matches per query (0 = all)\n"
    "  --deadline-ms D       per-query budget; 0 = none\n"
    "  --hot-set H           distinct hot records queried (1024)\n"
    "\n"
    "load generator (loadgen):\n"
    "  --connections C       concurrent client connections (1)\n"
    "  --qps Q               open-loop target rate; 0 = closed loop\n"
    "  --entity-fraction F   fraction at entity granularity (0)\n"
    "  --seed S              workload RNG seed (17)\n"
    "  --record F            capture every query frame sent to F\n"
    "  --replay F            replay a capture byte-identically\n"
    "  --json                machine-readable report on stdout\n"
    "  --io-timeout-ms D     client blocking-read budget; a stalled\n"
    "                        server is a typed DEADLINE_EXCEEDED, not a\n"
    "                        hang (30000; 0 = wait forever)\n"
    "\n"
    "adversarial client (loadgen --adversary MODE):\n"
    "  --adversary MODE      attack instead of load: slowloris | dribble\n"
    "                        | never-read | garbage | half-close\n"
    "  --duration-ms D       attack wall-clock budget (2000)\n"
    "  --write-interval-ms I pause between dribbled bytes (50)\n"
    "                        (--connections and --seed apply here too)\n"
    "\n"
    "live index updates (serve):\n"
    "  --live                accept kAppendRequest frames; a background\n"
    "                        builder publishes new index generations while\n"
    "                        queries keep flowing (alias: --watch-appends)\n"
    "  --model F             ADTree for incremental match scoring\n"
    "                        (default: block-score ranking)\n"
    "  --publish-batch N     records applied per published generation (1)\n"
    "  --ingest-queue N      append backpressure: queue cap before\n"
    "                        RESOURCE_EXHAUSTED (4096)\n"
    "\n"
    "durable ingest (serve --live):\n"
    "  --wal-dir D           write appends through a write-ahead log in D\n"
    "                        before acking; on startup, replay D so every\n"
    "                        previously ack'd record is served again\n"
    "                        (without it, acks mean enqueued, not durable)\n"
    "  --wal-segment-bytes N rotate log segments at N bytes (4 MiB)\n"
    "  --wal-snapshot-every N  snapshot the appended records to CSV and\n"
    "                        retire covered segments every N appends (256)\n"
    "\n"
    "append client (append):\n"
    "  --in F                CSV of records to append (required)\n"
    "  --count N             send only the first N records (0 = all)\n"
    "  --wait-ms D           bound on waiting for the generation that\n"
    "                        contains every ack'd record (10000)\n"
    "  --verify              query the last appended record back and\n"
    "                        print its match count\n"
    "  --verify-from I       additionally query every record index in\n"
    "                        [I, corpus size) — the crash-recovery check\n"
    "                        that previously ack'd records still answer\n";

data::Dataset LoadOrDie(const std::string& path) {
  auto dataset = data::LoadDatasetCsvLenient(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot load dataset from %s: %s\n", path.c_str(),
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(dataset).value();
}

bool HasGroundTruth(const data::Dataset& dataset) {
  for (const auto& r : dataset.records()) {
    if (r.entity_id != data::kUnknownEntity) return true;
  }
  return false;
}

// Materializes the in-memory index from whichever artifact the options
// name: the binary index (preferred) or the matches CSV.
std::shared_ptr<const serve::ResolutionIndex> LoadIndexOrDie(
    const data::Dataset& dataset, const QueryOptions& options) {
  // Load paths retry transient failures (a torn concurrent write shows up
  // as DATA_LOSS; NFS hiccups as UNAVAILABLE) before giving up.
  util::RetryStats retry_stats;
  if (!options.index_path.empty()) {
    auto loaded = serve::ResolutionIndex::LoadWithRetry(
        options.index_path, util::RetryPolicy{}, &retry_stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s (after %d attempt(s))\n",
                   loaded.status().ToString().c_str(), retry_stats.attempts);
      std::exit(1);
    }
    if (loaded->num_records() != dataset.size()) {
      std::fprintf(stderr,
                   "index covers %zu records but dataset has %zu\n",
                   loaded->num_records(), dataset.size());
      std::exit(1);
    }
    return std::make_shared<const serve::ResolutionIndex>(
        *std::move(loaded));
  }
  if (options.matches.empty()) {
    std::fprintf(stderr, "need --matches or --index\n");
    std::exit(2);
  }
  auto resolution = core::LoadMatchesCsvWithRetry(
      dataset, options.matches, util::RetryPolicy{}, &retry_stats);
  if (!resolution.ok()) {
    std::fprintf(stderr, "%s (after %d attempt(s))\n",
                 resolution.status().ToString().c_str(),
                 retry_stats.attempts);
    std::exit(1);
  }
  // The CSV is untrusted input: Build validates instead of CHECK-failing.
  auto built = serve::ResolutionIndex::Build(*resolution, dataset.size());
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    std::exit(1);
  }
  return std::make_shared<const serve::ResolutionIndex>(*std::move(built));
}

std::map<uint64_t, data::RecordIdx> BookIdIndex(
    const data::Dataset& dataset) {
  std::map<uint64_t, data::RecordIdx> by_book;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    by_book[dataset[r].book_id] = r;
  }
  return by_book;
}

// ---------------------------------------------------------------------------
// Commands

int CmdGenerate(const Flags& flags) {
  synth::GeneratorConfig config;
  std::string region = util::ToLower(flags.Get("region", "all"));
  if (region == "italy") {
    config = synth::ItalyConfig();
  } else if (region != "all") {
    std::fprintf(stderr, "unknown --region %s (use italy|all)\n",
                 region.c_str());
    return 2;
  }
  config.num_persons = static_cast<size_t>(
      flags.GetInt("persons", static_cast<long>(config.num_persons)));
  if (flags.Has("mv")) config.include_mv = true;
  config.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<long>(config.seed)));
  auto generated = synth::Generate(config);
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(generated.dataset, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu reports of %zu persons to %s\n",
              generated.dataset.size(), generated.persons.size(),
              out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  std::printf("records: %zu\n", dataset.size());
  if (HasGroundTruth(dataset)) {
    std::printf("gold matched pairs: %zu\n", dataset.NumGoldPairs());
  }
  auto patterns = data::ComputePatternStats(dataset);
  std::printf("distinct data patterns: %zu\n\n", patterns.NumPatterns());
  std::printf("%-28s %10s %12s\n", "records-with-pattern bucket",
              "#patterns", "sum #records");
  for (const auto& bucket : patterns.Fig11Buckets()) {
    std::printf("%-28s %10zu %12zu\n", bucket.label.c_str(),
                bucket.num_patterns, bucket.num_records);
  }
  std::printf("\n%-18s %10s %6s %8s\n", "Item Type", "Records", "%",
              "Items");
  auto prevalence = data::ComputePrevalence(dataset);
  auto cardinality = data::ComputeCardinality(dataset);
  for (size_t a = 0; a < data::kNumAttributes; ++a) {
    std::printf("%-18s %10zu %5.0f%% %8zu\n",
                std::string(data::AttributeDisplayName(
                                static_cast<data::AttributeId>(a)))
                    .c_str(),
                prevalence[a].num_records, prevalence[a].fraction * 100.0,
                cardinality[a].num_items);
  }
  return 0;
}

int CmdNormalize(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  auto normalizer = text::NameNormalizer::Build(dataset);
  data::Dataset normalized = normalizer.Apply(dataset);
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(normalized, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("normalized %zu records (%zu equivalence classes, %zu values "
              "folded) -> %s\n",
              normalized.size(), normalizer.NumNonTrivialClasses(),
              normalizer.NumFoldedValues(), out.c_str());
  return 0;
}

int CmdResolve(const ResolveOptions& options) {
  data::Dataset dataset = LoadOrDie(options.in);
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(dataset, gazetteer.MakeGeoResolver());
  bool can_classify = HasGroundTruth(dataset);
  core::PipelineConfig config = options.ToPipelineConfig(can_classify);
  if (!can_classify && !options.no_classify) {
    std::fprintf(stderr,
                 "note: no ground truth for tagger; falling back to "
                 "block-score ranking\n");
  }

  synth::TagOracle oracle(&dataset);
  auto result = pipeline.Run(
      config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  std::printf("blocking: %zu blocks, %zu candidate pairs; resolution: %zu "
              "ranked matches\n",
              result.blocking.blocks.size(), result.blocking.pairs.size(),
              result.resolution.size());
  if (options.profile) PrintStageProfile(result.timings);
  if (HasGroundTruth(dataset)) {
    auto q = core::EvaluateMatches(dataset, result.resolution.matches());
    std::printf("vs ground truth: precision %.3f recall %.3f F1 %.3f\n",
                q.Precision(), q.Recall(), q.F1());
  }
  auto saved = core::SaveMatchesCsv(dataset, result.resolution, options.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu matches to %s\n", result.resolution.size(),
              options.out.c_str());
  if (!options.model_out.empty() && config.use_classifier) {
    if (ml::SaveAdTree(result.model, options.model_out)) {
      std::printf("wrote model to %s\n", options.model_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write model\n");
      return 1;
    }
  }
  return 0;
}

int CmdIndex(const QueryOptions& options) {
  if (options.out.empty()) {
    std::fprintf(stderr, "missing required flag --out\n");
    return 2;
  }
  data::Dataset dataset = LoadOrDie(options.in);
  auto index = LoadIndexOrDie(dataset, options);
  auto saved = index->Save(options.out);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu matches over %zu records -> %s "
              "(checksum %016llx)\n",
              index->num_matches(), index->num_records(),
              options.out.c_str(),
              static_cast<unsigned long long>(index->Checksum()));
  return 0;
}

int CmdQuery(const QueryOptions& options) {
  data::Dataset dataset = LoadOrDie(options.in);
  auto index = LoadIndexOrDie(dataset, options);
  core::EntityClusters clusters = index->ClustersAt(options.certainty);
  std::printf("%zu matches above certainty %.2f -> %zu entities (%zu "
              "multi-report)\n",
              index->CountAbove(options.certainty), options.certainty,
              clusters.size(), clusters.NumNonSingleton());
  if (options.book_id) {
    auto by_book = BookIdIndex(dataset);
    auto it = by_book.find(*options.book_id);
    if (it == by_book.end()) {
      std::fprintf(stderr, "unknown book id\n");
      return 1;
    }
    serve::ResolutionService service(index);
    auto result = service.QueryRecord(
        options.ToServeQuery(it->second, serve::Granularity::kEntity));
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    auto profile = core::BuildProfile(dataset, result->entity);
    std::printf("\nEntity of BookID %llu (%zu report(s)):\n%s\n",
                static_cast<unsigned long long>(*options.book_id),
                result->entity.size(),
                core::RenderNarrative(profile).c_str());
  } else {
    size_t shown = 0;
    for (const auto& cluster : clusters.clusters()) {
      if (cluster.size() < 2) break;
      auto profile = core::BuildProfile(dataset, cluster);
      std::printf("* %s\n", core::RenderNarrative(profile).c_str());
      if (++shown == 5) break;
    }
  }
  return 0;
}

int CmdServeBench(const ServeOptions& serve_options) {
  const QueryOptions& options = serve_options.query;
  data::Dataset dataset = LoadOrDie(options.in);
  auto index = LoadIndexOrDie(dataset, options);
  if (index->num_records() == 0) {
    std::fprintf(stderr, "empty corpus\n");
    return 1;
  }

  // Workload: num_queries record lookups drawn from a hot subset of the
  // corpus, so repeated queries exercise the cache the way production
  // traffic (popular victims, shared pages) would.
  size_t hot = std::min<size_t>(std::max<size_t>(1, options.hot_set),
                                index->num_records());
  util::Rng rng(17);
  std::vector<serve::Query> workload;
  workload.reserve(options.num_queries);
  for (size_t i = 0; i < options.num_queries; ++i) {
    auto record = static_cast<data::RecordIdx>(
        rng.UniformInt(0, static_cast<int>(hot) - 1));
    workload.push_back(
        options.ToServeQuery(record, serve::Granularity::kMatches));
  }

  serve::ResolutionService service(index,
                                   serve_options.ToServiceOptions());

  // Baseline: the pre-index behaviour — one linear scan of the full match
  // list per query (what `query` did per invocation before ResolutionIndex).
  const auto& arena = index->matches();
  util::Timer timer;
  size_t linear_hits = 0;
  for (const auto& query : workload) {
    for (const auto& m : arena) {
      if (!(m.confidence > query.certainty)) break;
      if (m.pair.a == query.record || m.pair.b == query.record) {
        ++linear_hits;
        if (query.k != 0) break;  // k=0 collects all, mirroring ForRecord
      }
    }
  }
  double linear_ms = timer.ElapsedMillis();

  timer.Reset();
  auto cold = service.QueryBatch(workload);
  double cold_ms = timer.ElapsedMillis();

  timer.Reset();
  auto warm = service.QueryBatch(workload);
  double warm_ms = timer.ElapsedMillis();

  auto metrics = service.metrics();
  std::printf("corpus: %zu records, %zu matches; workload: %zu queries "
              "over %zu hot records, certainty %.2f, %zu threads\n",
              index->num_records(), index->num_matches(), workload.size(),
              hot, options.certainty, service.num_threads());
  if (options.deadline_ms > 0) {
    std::printf("per-query deadline: %.2f ms (%llu exceeded, %llu shed, "
                "%llu degraded)\n",
                options.deadline_ms,
                static_cast<unsigned long long>(cold.deadline_exceeded +
                                                warm.deadline_exceeded),
                static_cast<unsigned long long>(cold.shed + warm.shed),
                static_cast<unsigned long long>(cold.degraded +
                                                warm.degraded));
  }
  std::printf("linear scan   : %10.2f ms  (%.1f us/query, %zu match visits)\n",
              linear_ms, 1000.0 * linear_ms / workload.size(), linear_hits);
  std::printf("batch cold    : %10.2f ms  (%.1f us/query)\n", cold_ms,
              1000.0 * cold_ms / workload.size());
  std::printf("batch warm    : %10.2f ms  (%.1f us/query)\n", warm_ms,
              1000.0 * warm_ms / workload.size());
  std::printf("per-query latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms "
              "(log2-bucket upper bounds)\n",
              metrics.LatencyPercentileMs(0.50),
              metrics.LatencyPercentileMs(0.95),
              metrics.LatencyPercentileMs(0.99));
  std::printf("warm speedup vs linear scan: %.1fx  (cache hit rate %.1f%%, "
              "%llu/%zu answered)\n",
              warm_ms > 0 ? linear_ms / warm_ms : 0.0,
              100.0 * metrics.HitRate(),
              static_cast<unsigned long long>(warm.ok), warm.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Wire serving: `serve` runs the TCP front end until SIGINT/SIGTERM,
// `loadgen` drives one from the client side.

std::atomic<bool> g_stop_requested{false};

void HandleStopSignal(int) { g_stop_requested.store(true); }

int CmdServe(const ServeOptions& options) {
  data::Dataset dataset = LoadOrDie(options.query.in);
  auto index = LoadIndexOrDie(dataset, options.query);

  // --live: seed an incremental resolver with exactly the corpus +
  // resolution the serving index was built over, and let a background
  // builder publish new generations as appends arrive. With --wal-dir the
  // resolver additionally replays the durable history (snapshot CSV, then
  // the log) before the first query is admitted, so every previously
  // ack'd record is served again (DESIGN.md §14).
  std::shared_ptr<serve::LiveIndexBuilder> builder;
  std::unique_ptr<serve::WriteAheadLog> wal;
  size_t recovered_snapshot = 0;
  size_t recovered_log = 0;
  std::unique_ptr<core::IncrementalResolver> resolver;
  serve::IngestOptions ingest = options.ToIngestOptions();
  if (options.live) {
    ml::AdTree model;
    if (!options.model_path.empty()) {
      auto loaded = ml::LoadAdTree(options.model_path);
      if (!loaded) {
        std::fprintf(stderr, "cannot load model from %s\n",
                     options.model_path.c_str());
        return 1;
      }
      model = *std::move(loaded);
    }
    // The owned resolver keeps its gazetteer alive for as long as the
    // serving resolver does — a scoped Gazetteer here would dangle once
    // the builder thread starts calling AddRecord.
    resolver = std::make_unique<core::IncrementalResolver>(
        dataset, core::RankedResolution(index->matches()), std::move(model),
        synth::Gazetteer::MakeOwnedGeoResolver());
    if (!options.wal_dir.empty()) {
      std::string snapshot_path = options.wal_dir + "/snapshot-appends.csv";
      // Replay order is the determinism contract: snapshot rows first
      // (they ARE the first appends, in arrival order), then every log
      // record beyond what the snapshot covers.
      if (::access(snapshot_path.c_str(), F_OK) == 0) {
        auto snap = data::LoadDatasetCsvLenient(snapshot_path);
        if (!snap.ok()) {
          std::fprintf(stderr, "wal snapshot %s: %s\n", snapshot_path.c_str(),
                       snap.status().ToString().c_str());
          return 1;
        }
        for (const data::Record& r : snap->records()) resolver->AddRecord(r);
        recovered_snapshot = snap->size();
      }
      serve::WalOptions wal_options;
      wal_options.segment_bytes = options.wal_segment_bytes;
      std::vector<serve::WalRecoveredRecord> recovered;
      auto opened = serve::WriteAheadLog::Open(options.wal_dir, wal_options,
                                              &recovered);
      if (!opened.ok()) {
        std::fprintf(stderr, "wal recovery in %s: %s\n",
                     options.wal_dir.c_str(),
                     opened.status().ToString().c_str());
        return 1;
      }
      wal = std::move(opened).value();
      for (serve::WalRecoveredRecord& rec : recovered) {
        // Sequences the snapshot covers are already in (their segments
        // just haven't been retired yet).
        if (rec.sequence <= recovered_snapshot) continue;
        resolver->AddRecord(std::move(rec.record));
        ++recovered_log;
      }
      ingest.wal = wal.get();
      ingest.wal_base_records = dataset.size();
      ingest.snapshot_every = options.wal_snapshot_every;
      ingest.snapshot_path = snapshot_path;
    }
    if (resolver->dataset().size() > dataset.size()) {
      // Serve the recovered corpus from generation 1: the index is a pure
      // function of (seed corpus, ack'd-append prefix), exactly as if the
      // crash never happened.
      index = std::make_shared<const serve::ResolutionIndex>(
          resolver->Resolution(), resolver->dataset().size());
    }
  }

  auto service = std::make_shared<serve::ResolutionService>(
      index, options.ToServiceOptions());
  if (options.live) {
    builder = std::make_shared<serve::LiveIndexBuilder>(
        service, std::move(resolver), ingest);
  }

  serve::net::Server server(service, options.ToServerOptions(), builder);
  auto started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  if (!options.port_file.empty()) {
    // Written after listen succeeds, and write-then-rename so a polling
    // script can never read a partially written port number: the file
    // either doesn't exist yet or holds the complete port line.
    util::Status wrote = util::WriteFileAtomic(
        options.port_file, std::to_string(server.port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", options.port_file.c_str(),
                   wrote.ToString().c_str());
      server.Shutdown();
      return 1;
    }
  }
  std::printf("serving %zu records / %zu matches on 127.0.0.1:%u "
              "(%zu service thread(s), %zu dispatcher(s))\n",
              index->num_records(), index->num_matches(), server.port(),
              service->num_threads(), options.dispatch_threads);
  if (builder) {
    std::printf("live ingest on: appends publish every %zu record(s), "
                "queue cap %zu\n",
                options.publish_batch == 0 ? size_t{1} : options.publish_batch,
                options.ingest_queue);
  }
  if (wal) {
    std::printf("wal: recovered %zu record(s) (%zu from snapshot, %zu from "
                "log) from %s; durable sequence %llu\n",
                recovered_snapshot + recovered_log, recovered_snapshot,
                recovered_log, options.wal_dir.c_str(),
                static_cast<unsigned long long>(wal->durable_sequence()));
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop_requested.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining...\n");
  server.Shutdown();
  auto stats = server.stats();
  std::printf("served %llu queries over %llu connection(s) "
              "(%llu responses, %llu protocol error(s))\n",
              static_cast<unsigned long long>(stats.queries_dispatched),
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.responses_sent),
              static_cast<unsigned long long>(stats.protocol_errors));
  if (builder) {
    builder->Stop();
    auto ingest_stats = builder->stats();
    auto metrics = service->metrics();
    std::printf("live ingest: %llu appended, %llu published generation(s) "
                "(now serving generation %llu, %llu publish failure(s))\n",
                static_cast<unsigned long long>(ingest_stats.applied),
                static_cast<unsigned long long>(ingest_stats.published),
                static_cast<unsigned long long>(metrics.generation),
                static_cast<unsigned long long>(ingest_stats.publish_failures));
  }
  if (wal) {
    auto wal_stats = wal->stats();
    std::printf("wal: %llu append(s) in %llu fsync batch(es), %llu "
                "rotation(s), %llu segment(s) on disk, %llu snapshot(s)\n",
                static_cast<unsigned long long>(wal_stats.appends),
                static_cast<unsigned long long>(wal_stats.fsyncs),
                static_cast<unsigned long long>(wal_stats.rotations),
                static_cast<unsigned long long>(wal_stats.segments),
                builder ? static_cast<unsigned long long>(
                              builder->stats().snapshots)
                        : 0ULL);
  }
  return 0;
}

// loadgen --adversary MODE: run the hostile-client harness instead of a
// load test, and report what the server's defense layer did about it.
int CmdAdversary(const ServeOptions& options) {
  auto mode = serve::net::ParseAdversaryMode(options.adversary);
  if (!mode.ok()) {
    std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
    return 2;
  }
  auto report = serve::net::RunAdversary(options.ToAdversaryOptions(*mode));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (options.json) {
    std::printf(
        "{\"adversary\": \"%s\", \"connections_opened\": %llu, "
        "\"bytes_sent\": %llu, \"frames_sent\": %llu, "
        "\"responses_read\": %llu, \"ok_responses\": %llu, "
        "\"error_responses\": %llu, \"server_closed\": %llu, "
        "\"clean_eofs\": %llu}\n",
        serve::net::AdversaryModeName(*mode),
        static_cast<unsigned long long>(report->connections_opened),
        static_cast<unsigned long long>(report->bytes_sent),
        static_cast<unsigned long long>(report->frames_sent),
        static_cast<unsigned long long>(report->responses_read),
        static_cast<unsigned long long>(report->ok_responses),
        static_cast<unsigned long long>(report->error_responses),
        static_cast<unsigned long long>(report->server_closed),
        static_cast<unsigned long long>(report->clean_eofs));
    return 0;
  }
  std::printf("%s\n",
              serve::net::FormatAdversaryReport(*mode, *report).c_str());
  return 0;
}

int CmdLoadGen(const ServeOptions& options) {
  if (options.port == 0) {
    std::fprintf(stderr, "missing required flag --port\n");
    return 2;
  }
  if (!options.adversary.empty()) return CmdAdversary(options);
  if (!options.record_path.empty() && !options.replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 2;
  }
  auto report = serve::net::RunLoadGen(options.ToLoadGenOptions());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (options.json) {
    std::printf(
        "{\"queries_sent\": %llu, \"ok\": %llu, \"errors\": %llu, "
        "\"wall_seconds\": %.6f, \"qps\": %.1f, "
        "\"response_hash\": \"%016llx\", "
        "\"client_p50_ms\": %.3f, \"client_p95_ms\": %.3f, "
        "\"client_p99_ms\": %.3f, \"server_p50_ms\": %.3f, "
        "\"server_p95_ms\": %.3f, \"server_p99_ms\": %.3f, "
        "\"server_queries\": %llu, \"server_shed\": %llu, "
        "\"server_deadline_exceeded\": %llu, \"cache_hit_rate\": %.4f}\n",
        static_cast<unsigned long long>(report->queries_sent),
        static_cast<unsigned long long>(report->ok),
        static_cast<unsigned long long>(report->errors),
        report->wall_seconds, report->qps_achieved,
        static_cast<unsigned long long>(report->response_hash),
        report->LatencyPercentileMs(0.50),
        report->LatencyPercentileMs(0.95),
        report->LatencyPercentileMs(0.99),
        report->server_metrics.LatencyPercentileMs(0.50),
        report->server_metrics.LatencyPercentileMs(0.95),
        report->server_metrics.LatencyPercentileMs(0.99),
        static_cast<unsigned long long>(report->server_metrics.queries),
        static_cast<unsigned long long>(report->server_metrics.shed),
        static_cast<unsigned long long>(
            report->server_metrics.deadline_exceeded),
        report->server_metrics.HitRate());
    return 0;
  }
  std::printf("%llu queries over %zu connection(s) in %.2f s "
              "(%.0f qps%s): %llu ok, %llu error frame(s)\n",
              static_cast<unsigned long long>(report->queries_sent),
              options.connections, report->wall_seconds,
              report->qps_achieved,
              options.qps > 0 ? ", open loop" : ", closed loop",
              static_cast<unsigned long long>(report->ok),
              static_cast<unsigned long long>(report->errors));
  std::printf("client latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms "
              "(log2-bucket upper bounds)\n",
              report->LatencyPercentileMs(0.50),
              report->LatencyPercentileMs(0.95),
              report->LatencyPercentileMs(0.99));
  std::printf("server latency: p50 %.3f ms  p95 %.3f ms  p99 %.3f ms "
              "(%llu served, cache hit rate %.1f%%)\n",
              report->server_metrics.LatencyPercentileMs(0.50),
              report->server_metrics.LatencyPercentileMs(0.95),
              report->server_metrics.LatencyPercentileMs(0.99),
              static_cast<unsigned long long>(report->server_metrics.queries),
              100.0 * report->server_metrics.HitRate());
  std::printf("response hash: %016llx\n",
              static_cast<unsigned long long>(report->response_hash));
  return 0;
}

// Streams records from a CSV into a `serve --live` server and waits until
// the served generation contains every ack'd record — the end-to-end proof
// the TSan loopback smoke runs: append over the wire, watch the generation
// advance, query the new record back.
int CmdAppend(const ServeOptions& options) {
  if (options.port == 0) {
    std::fprintf(stderr, "missing required flag --port\n");
    return 2;
  }
  data::Dataset dataset = LoadOrDie(options.query.in);
  if (dataset.size() == 0) {
    std::fprintf(stderr, "no records to append in %s\n",
                 options.query.in.c_str());
    return 1;
  }
  size_t count = options.append_count == 0
                     ? dataset.size()
                     : std::min(options.append_count, dataset.size());
  util::Deadline deadline = options.wait_ms > 0
                                ? util::Deadline::AfterMillis(options.wait_ms)
                                : util::Deadline();

  auto client = serve::net::Client::Connect(options.port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  // A wedged server must fail the append run with a typed status, not
  // hang it: every blocking read below inherits this budget.
  client->set_read_timeout_ms(options.io_timeout_ms);
  uint64_t first_idx = 0;
  uint64_t last_idx = 0;
  size_t durable_acks = 0;
  uint64_t last_wal_sequence = 0;
  for (size_t i = 0; i < count; ++i) {
    auto ack = client->Append(dataset[static_cast<data::RecordIdx>(i)],
                              deadline);
    if (!ack.ok()) {
      // A full ingest queue surfaces here as RESOURCE_EXHAUSTED, a server
      // without --live as UNAVAILABLE — both are the server's typed answer.
      std::fprintf(stderr, "append %zu/%zu: %s\n", i + 1, count,
                   ack.status().ToString().c_str());
      return 1;
    }
    if (i == 0) first_idx = ack->record_idx;
    last_idx = ack->record_idx;
    if (ack->durable) {
      ++durable_acks;
      last_wal_sequence = ack->wal_sequence;
    }
  }

  // The ack is acceptance, not visibility: poll Info until the serving
  // generation covers the last assigned index.
  serve::wire::ServerInfo info;
  for (;;) {
    auto got = client->Info(deadline);
    if (!got.ok()) {
      std::fprintf(stderr, "%s\n", got.status().ToString().c_str());
      return 1;
    }
    info = *got;
    if (info.num_records > last_idx) break;
    if (!deadline.is_infinite() && deadline.HasExpired()) {
      std::fprintf(stderr,
                   "timed out waiting for a generation containing record "
                   "%llu (server at %llu records, generation %llu)\n",
                   static_cast<unsigned long long>(last_idx),
                   static_cast<unsigned long long>(info.num_records),
                   static_cast<unsigned long long>(info.metrics.generation));
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("appended %zu record(s) as indices %llu..%llu; serving "
              "generation %llu (%llu publish(es), %llu records)\n",
              count, static_cast<unsigned long long>(first_idx),
              static_cast<unsigned long long>(last_idx),
              static_cast<unsigned long long>(info.metrics.generation),
              static_cast<unsigned long long>(info.metrics.publishes),
              static_cast<unsigned long long>(info.num_records));
  if (durable_acks > 0) {
    std::printf("durable: %zu/%zu ack(s) fsync'd through the server's WAL "
                "(last wal sequence %llu)\n",
                durable_acks, count,
                static_cast<unsigned long long>(last_wal_sequence));
  }

  // --verify-from I: the crash-recovery check. Every corpus index in
  // [I, num_records) — typically the records a previous process ack'd
  // before being killed — must still answer OK from the recovered index.
  if (options.verify_from >= 0) {
    uint64_t from = static_cast<uint64_t>(options.verify_from);
    if (from >= info.num_records) {
      std::fprintf(stderr,
                   "verify-from %llu is beyond the %llu-record corpus\n",
                   static_cast<unsigned long long>(from),
                   static_cast<unsigned long long>(info.num_records));
      return 1;
    }
    for (uint64_t idx = from; idx < info.num_records; ++idx) {
      auto result = client->Call(options.query.ToServeQuery(
          static_cast<data::RecordIdx>(idx), serve::Granularity::kMatches));
      if (!result.ok()) {
        std::fprintf(stderr, "verify-from: record %llu: %s\n",
                     static_cast<unsigned long long>(idx),
                     result.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("verify-from: records %llu..%llu all answer OK "
                "(generation %llu)\n",
                static_cast<unsigned long long>(from),
                static_cast<unsigned long long>(info.num_records - 1),
                static_cast<unsigned long long>(info.metrics.generation));
  }

  if (options.verify) {
    auto result = client->Call(options.query.ToServeQuery(
        static_cast<data::RecordIdx>(last_idx),
        serve::Granularity::kMatches));
    if (!result.ok()) {
      std::fprintf(stderr, "verify query: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("verify: record %llu answers with %zu match(es) above "
                "certainty %.2f (generation %llu)\n",
                static_cast<unsigned long long>(last_idx),
                result->matches.size(), options.query.certainty,
                static_cast<unsigned long long>(result->generation));
  }
  return 0;
}

int CmdSample(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  data::Dataset result = dataset;
  if (flags.Has("country")) {
    result = data::FilterByCountry(result, flags.Get("country"));
  }
  if (flags.Has("fraction")) {
    double fraction = flags.GetDouble("fraction", 1.0);
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    result = flags.Has("by-entity")
                 ? data::SampleByEntity(result, fraction, rng)
                 : data::SampleUniform(result, fraction, rng);
  }
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(result, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("sampled %zu of %zu records -> %s\n", result.size(),
              dataset.size(), out.c_str());
  return 0;
}

int CmdGraph(const QueryOptions& options) {
  if (options.out.empty()) {
    std::fprintf(stderr, "missing required flag --out\n");
    return 2;
  }
  data::Dataset dataset = LoadOrDie(options.in);
  auto index = LoadIndexOrDie(dataset, options);
  core::EntityClusters clusters = index->ClustersAt(options.certainty);
  auto graph = core::KnowledgeGraph::FromClusters(dataset, clusters,
                                                  options.max_entities);
  size_t spouse_links = graph.LinkSpouses();
  std::ofstream f(options.out, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
    return 1;
  }
  f << graph.ToDot();
  std::printf("knowledge graph: %zu nodes, %zu edges (%zu spouse links) "
              "-> %s\n",
              graph.nodes().size(), graph.edges().size(), spouse_links,
              options.out.c_str());
  return 0;
}

int CmdFamilies(const QueryOptions& options) {
  data::Dataset dataset = LoadOrDie(options.in);
  auto index = LoadIndexOrDie(dataset, options);
  core::EntityClusters persons = index->ClustersAt(options.certainty);
  auto families = core::ResolveFamilies(dataset, persons);
  size_t multi = 0;
  for (const auto& fc : families) multi += fc.person_clusters.size() > 1;
  std::printf("%zu person entities -> %zu family units (%zu joining "
              "multiple persons)\n",
              persons.size(), families.size(), multi);
  if (HasGroundTruth(dataset)) {
    auto q = core::EvaluateFamilyClusters(dataset, families);
    std::printf("family-level pair precision %.3f recall %.3f\n",
                q.Precision(), q.Recall());
  }
  size_t shown = 0;
  for (const auto& fc : families) {
    if (fc.person_clusters.size() < 2) continue;
    std::printf("\nfamily of %zu person(s), %zu report(s):\n",
                fc.person_clusters.size(), fc.records.size());
    for (size_t pc : fc.person_clusters) {
      auto profile =
          core::BuildProfile(dataset, persons.clusters()[pc]);
      std::printf("  - %s\n", core::RenderNarrative(profile).c_str());
    }
    if (++shown == options.max_shown) break;
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: yver_cli "
               "<generate|stats|normalize|resolve|index|query|serve|"
               "serve-bench|loadgen|append|sample|graph|families> "
               "[flags]\n(see the header of tools/yver_cli.cc; "
               "`yver_cli serve --help` covers the serving knobs)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help") {
    Usage();
    return 0;
  }
  Flags flags(argc, argv, 2);
  bool serving = cmd == "serve" || cmd == "serve-bench" ||
                 cmd == "loadgen" || cmd == "append";
  if (flags.Has("help")) {
    if (serving) {
      std::fputs(kServeHelp, stdout);
    } else {
      Usage();
    }
    return 0;
  }
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "normalize") return CmdNormalize(flags);
  if (cmd == "resolve") return CmdResolve(ParseResolveOptions(flags));
  if (cmd == "index") return CmdIndex(ParseQueryOptions(flags));
  if (cmd == "query") return CmdQuery(ParseQueryOptions(flags));
  if (cmd == "serve") return CmdServe(ParseServeOptions(flags, true));
  if (cmd == "serve-bench") {
    return CmdServeBench(ParseServeOptions(flags, true));
  }
  if (cmd == "loadgen") return CmdLoadGen(ParseServeOptions(flags, false));
  if (cmd == "append") return CmdAppend(ParseServeOptions(flags, true));
  if (cmd == "sample") return CmdSample(flags);
  if (cmd == "graph") return CmdGraph(ParseQueryOptions(flags));
  if (cmd == "families") return CmdFamilies(ParseQueryOptions(flags));
  return Usage();
}
