// yver_cli — command-line front end for the uncertain-ER library.
//
//   yver_cli generate  --persons N [--region italy|all] [--mv] [--seed S]
//                      --out data.csv
//   yver_cli stats     --in data.csv
//   yver_cli normalize --in data.csv --out clean.csv
//   yver_cli resolve   --in data.csv --out matches.csv [--ng X]
//                      [--maxminsup K] [--no-classify] [--samesrc]
//                      [--model-out model.adt]
//   yver_cli query     --in data.csv --matches matches.csv
//                      [--certainty C] [--book-id B]
//   yver_cli sample    --in data.csv --out sub.csv [--fraction F]
//                      [--by-entity] [--country NAME] [--seed S]
//   yver_cli graph     --in data.csv --matches matches.csv --out g.dot
//                      [--certainty C] [--max-entities N]
//   yver_cli families  --in data.csv --matches matches.csv
//                      [--certainty C] [--max-shown N]
//
// `resolve` trains the ADTree from the simulated expert tagger when the
// dataset carries ground-truth entity ids (synthetic corpora do); without
// them it falls back to block-score ranking (--no-classify implied).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "core/entity_clusters.h"
#include "core/evaluation.h"
#include "core/family_resolution.h"
#include "core/knowledge_graph.h"
#include "core/narrative.h"
#include "core/pipeline.h"
#include "data/csv_io.h"
#include "data/sample.h"
#include "data/stats.h"
#include "ml/adtree_io.h"
#include "synth/gazetteer.h"
#include "synth/generator.h"
#include "synth/tag_oracle.h"
#include "text/normalizer.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

using namespace yver;

// ---------------------------------------------------------------------------
// Tiny flag parser: --name value / --name (boolean).

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      std::string name = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[name] = argv[++i];
      } else {
        values_[name] = "";
      }
    }
  }

  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    return Has(name) ? std::strtod(Get(name).c_str(), nullptr) : fallback;
  }
  long GetInt(const std::string& name, long fallback) const {
    return Has(name) ? std::atol(Get(name).c_str()) : fallback;
  }
  std::string Require(const std::string& name) const {
    if (!Has(name)) {
      std::fprintf(stderr, "missing required flag --%s\n", name.c_str());
      std::exit(2);
    }
    return Get(name);
  }

 private:
  std::map<std::string, std::string> values_;
};

data::Dataset LoadOrDie(const std::string& path) {
  auto dataset = data::LoadDatasetCsv(path);
  if (!dataset) {
    std::fprintf(stderr, "cannot load dataset from %s\n", path.c_str());
    std::exit(1);
  }
  return std::move(*dataset);
}

bool HasGroundTruth(const data::Dataset& dataset) {
  for (const auto& r : dataset.records()) {
    if (r.entity_id != data::kUnknownEntity) return true;
  }
  return false;
}

// Loads a matches CSV (book_id_a,book_id_b,confidence,block_score) into a
// RankedResolution over `dataset`; nullopt on I/O failure.
std::optional<core::RankedResolution> LoadMatches(
    const data::Dataset& dataset, const std::string& path);

// ---------------------------------------------------------------------------
// Commands

int CmdGenerate(const Flags& flags) {
  synth::GeneratorConfig config;
  std::string region = util::ToLower(flags.Get("region", "all"));
  if (region == "italy") {
    config = synth::ItalyConfig();
  } else if (region != "all") {
    std::fprintf(stderr, "unknown --region %s (use italy|all)\n",
                 region.c_str());
    return 2;
  }
  config.num_persons = static_cast<size_t>(
      flags.GetInt("persons", static_cast<long>(config.num_persons)));
  if (flags.Has("mv")) config.include_mv = true;
  config.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<long>(config.seed)));
  auto generated = synth::Generate(config);
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(generated.dataset, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu reports of %zu persons to %s\n",
              generated.dataset.size(), generated.persons.size(),
              out.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  std::printf("records: %zu\n", dataset.size());
  if (HasGroundTruth(dataset)) {
    std::printf("gold matched pairs: %zu\n", dataset.NumGoldPairs());
  }
  auto patterns = data::ComputePatternStats(dataset);
  std::printf("distinct data patterns: %zu\n\n", patterns.NumPatterns());
  std::printf("%-28s %10s %12s\n", "records-with-pattern bucket",
              "#patterns", "sum #records");
  for (const auto& bucket : patterns.Fig11Buckets()) {
    std::printf("%-28s %10zu %12zu\n", bucket.label.c_str(),
                bucket.num_patterns, bucket.num_records);
  }
  std::printf("\n%-18s %10s %6s %8s\n", "Item Type", "Records", "%",
              "Items");
  auto prevalence = data::ComputePrevalence(dataset);
  auto cardinality = data::ComputeCardinality(dataset);
  for (size_t a = 0; a < data::kNumAttributes; ++a) {
    std::printf("%-18s %10zu %5.0f%% %8zu\n",
                std::string(data::AttributeDisplayName(
                                static_cast<data::AttributeId>(a)))
                    .c_str(),
                prevalence[a].num_records, prevalence[a].fraction * 100.0,
                cardinality[a].num_items);
  }
  return 0;
}

int CmdNormalize(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  auto normalizer = text::NameNormalizer::Build(dataset);
  data::Dataset normalized = normalizer.Apply(dataset);
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(normalized, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("normalized %zu records (%zu equivalence classes, %zu values "
              "folded) -> %s\n",
              normalized.size(), normalizer.NumNonTrivialClasses(),
              normalizer.NumFoldedValues(), out.c_str());
  return 0;
}

int CmdResolve(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  synth::Gazetteer gazetteer;
  core::UncertainErPipeline pipeline(dataset, gazetteer.MakeGeoResolver());
  core::PipelineConfig config;
  config.blocking.max_minsup =
      static_cast<uint32_t>(flags.GetInt("maxminsup", 5));
  config.blocking.ng = flags.GetDouble("ng", 3.5);
  config.blocking.expert_weighting = true;
  config.discard_same_source = flags.Has("samesrc");
  bool can_classify = HasGroundTruth(dataset);
  config.use_classifier = can_classify && !flags.Has("no-classify");
  if (!can_classify && !flags.Has("no-classify")) {
    std::fprintf(stderr,
                 "note: no ground truth for tagger; falling back to "
                 "block-score ranking\n");
  }

  synth::TagOracle oracle(&dataset);
  auto result = pipeline.Run(
      config, [&oracle](data::RecordIdx a, data::RecordIdx b) {
        return oracle.Tag(a, b);
      });
  std::printf("blocking: %zu blocks, %zu candidate pairs; resolution: %zu "
              "ranked matches\n",
              result.blocking.blocks.size(), result.blocking.pairs.size(),
              result.resolution.size());
  if (HasGroundTruth(dataset)) {
    auto q = core::EvaluateMatches(dataset, result.resolution.matches());
    std::printf("vs ground truth: precision %.3f recall %.3f F1 %.3f\n",
                q.Precision(), q.Recall(), q.F1());
  }
  // Matches CSV.
  std::string out = flags.Require("out");
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  f << "book_id_a,book_id_b,confidence,block_score\n";
  for (const auto& m : result.resolution.matches()) {
    f << dataset[m.pair.a].book_id << "," << dataset[m.pair.b].book_id
      << "," << m.confidence << "," << m.block_score << "\n";
  }
  std::printf("wrote %zu matches to %s\n", result.resolution.size(),
              out.c_str());
  if (flags.Has("model-out") && config.use_classifier) {
    if (ml::SaveAdTree(result.model, flags.Get("model-out"))) {
      std::printf("wrote model to %s\n", flags.Get("model-out").c_str());
    } else {
      std::fprintf(stderr, "cannot write model\n");
      return 1;
    }
  }
  return 0;
}

int CmdQuery(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  std::map<uint64_t, data::RecordIdx> by_book;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    by_book[dataset[r].book_id] = r;
  }
  auto loaded = LoadMatches(dataset, flags.Require("matches"));
  if (!loaded) {
    std::fprintf(stderr, "cannot read matches\n");
    return 1;
  }
  core::RankedResolution resolution = std::move(*loaded);
  double certainty = flags.GetDouble("certainty", 0.0);
  core::EntityClusters clusters(resolution, dataset.size(), certainty);
  std::printf("%zu matches above certainty %.2f -> %zu entities (%zu "
              "multi-report)\n",
              resolution.AboveThreshold(certainty).size(), certainty,
              clusters.size(), clusters.NumNonSingleton());
  if (flags.Has("book-id")) {
    uint64_t book = std::strtoull(flags.Get("book-id").c_str(), nullptr, 10);
    auto it = by_book.find(book);
    if (it == by_book.end()) {
      std::fprintf(stderr, "unknown book id\n");
      return 1;
    }
    const auto& members = clusters.Members(it->second);
    auto profile = core::BuildProfile(dataset, members);
    std::printf("\nEntity of BookID %llu (%zu report(s)):\n%s\n",
                static_cast<unsigned long long>(book), members.size(),
                core::RenderNarrative(profile).c_str());
  } else {
    size_t shown = 0;
    for (const auto& cluster : clusters.clusters()) {
      if (cluster.size() < 2) break;
      auto profile = core::BuildProfile(dataset, cluster);
      std::printf("* %s\n", core::RenderNarrative(profile).c_str());
      if (++shown == 5) break;
    }
  }
  return 0;
}

std::optional<core::RankedResolution> LoadMatches(
    const data::Dataset& dataset, const std::string& path) {
  std::map<uint64_t, data::RecordIdx> by_book;
  for (data::RecordIdx r = 0; r < dataset.size(); ++r) {
    by_book[dataset[r].book_id] = r;
  }
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream ss;
  ss << f.rdbuf();
  auto rows = util::ParseCsv(ss.str());
  std::vector<core::RankedMatch> matches;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() < 4) continue;
    auto a = by_book.find(std::strtoull(rows[i][0].c_str(), nullptr, 10));
    auto b = by_book.find(std::strtoull(rows[i][1].c_str(), nullptr, 10));
    if (a == by_book.end() || b == by_book.end()) continue;
    core::RankedMatch m;
    m.pair = data::RecordPair(a->second, b->second);
    m.confidence = std::strtod(rows[i][2].c_str(), nullptr);
    m.block_score = std::strtod(rows[i][3].c_str(), nullptr);
    matches.push_back(m);
  }
  return core::RankedResolution(std::move(matches));
}

int CmdSample(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  data::Dataset result = dataset;
  if (flags.Has("country")) {
    result = data::FilterByCountry(result, flags.Get("country"));
  }
  if (flags.Has("fraction")) {
    double fraction = flags.GetDouble("fraction", 1.0);
    util::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 42)));
    result = flags.Has("by-entity")
                 ? data::SampleByEntity(result, fraction, rng)
                 : data::SampleUniform(result, fraction, rng);
  }
  std::string out = flags.Require("out");
  if (!data::SaveDatasetCsv(result, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("sampled %zu of %zu records -> %s\n", result.size(),
              dataset.size(), out.c_str());
  return 0;
}

int CmdGraph(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  auto resolution = LoadMatches(dataset, flags.Require("matches"));
  if (!resolution) {
    std::fprintf(stderr, "cannot read matches\n");
    return 1;
  }
  double certainty = flags.GetDouble("certainty", 0.0);
  core::EntityClusters clusters(*resolution, dataset.size(), certainty);
  size_t max_entities =
      static_cast<size_t>(flags.GetInt("max-entities", 25));
  auto graph =
      core::KnowledgeGraph::FromClusters(dataset, clusters, max_entities);
  size_t spouse_links = graph.LinkSpouses();
  std::string out = flags.Require("out");
  std::ofstream f(out, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  f << graph.ToDot();
  std::printf("knowledge graph: %zu nodes, %zu edges (%zu spouse links) "
              "-> %s\n",
              graph.nodes().size(), graph.edges().size(), spouse_links,
              out.c_str());
  return 0;
}

int CmdFamilies(const Flags& flags) {
  data::Dataset dataset = LoadOrDie(flags.Require("in"));
  auto resolution = LoadMatches(dataset, flags.Require("matches"));
  if (!resolution) {
    std::fprintf(stderr, "cannot read matches\n");
    return 1;
  }
  double certainty = flags.GetDouble("certainty", 0.0);
  core::EntityClusters persons(*resolution, dataset.size(), certainty);
  auto families = core::ResolveFamilies(dataset, persons);
  size_t multi = 0;
  for (const auto& fc : families) multi += fc.person_clusters.size() > 1;
  std::printf("%zu person entities -> %zu family units (%zu joining "
              "multiple persons)\n",
              persons.size(), families.size(), multi);
  if (HasGroundTruth(dataset)) {
    auto q = core::EvaluateFamilyClusters(dataset, families);
    std::printf("family-level pair precision %.3f recall %.3f\n",
                q.Precision(), q.Recall());
  }
  size_t shown = 0;
  size_t max_shown = static_cast<size_t>(flags.GetInt("max-shown", 5));
  for (const auto& fc : families) {
    if (fc.person_clusters.size() < 2) continue;
    std::printf("\nfamily of %zu person(s), %zu report(s):\n",
                fc.person_clusters.size(), fc.records.size());
    for (size_t pc : fc.person_clusters) {
      auto profile =
          core::BuildProfile(dataset, persons.clusters()[pc]);
      std::printf("  - %s\n", core::RenderNarrative(profile).c_str());
    }
    if (++shown == max_shown) break;
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: yver_cli "
               "<generate|stats|normalize|resolve|query|sample|graph|families> "
               "[flags]\n(see the header of tools/yver_cli.cc)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  Flags flags(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "normalize") return CmdNormalize(flags);
  if (cmd == "resolve") return CmdResolve(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "sample") return CmdSample(flags);
  if (cmd == "graph") return CmdGraph(flags);
  if (cmd == "families") return CmdFamilies(flags);
  return Usage();
}
